//! Write-ahead logging: crash-safe page stores.
//!
//! [`WalStore`] wraps any [`PageStore`] and journals every mutation to an
//! append-only log before it reaches the backing store:
//!
//! * `allocate` / `free` / `write` append records to the log and are held
//!   in an in-memory overlay;
//! * [`WalStore::commit`] appends a commit marker and fsyncs the log — the
//!   batch is now durable;
//! * [`WalStore::checkpoint`] applies the overlay to the backing store,
//!   syncs it, and truncates the log;
//! * [`WalStore::open`] replays every *committed* batch from the log into
//!   the overlay; uncommitted tails (a crash mid-batch) are ignored.
//!
//! Records carry a CRC-32, so a torn final record is detected rather than
//! replayed. The overlay makes recovery idempotent: replay touches the
//! backing file only at the next checkpoint.

use std::collections::{BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::{Error, Result};
use crate::page::PageId;
use crate::store::PageStore;

const OP_WRITE: u8 = 1;
const OP_ALLOC: u8 = 2;
const OP_FREE: u8 = 3;
const OP_COMMIT: u8 = 4;

/// What [`WalStore::open`] found and discarded while replaying the log.
///
/// Replay keeps only whole committed batches; everything after the last
/// commit marker — parsed-but-uncommitted records and the torn or
/// CRC-corrupt tail — is truncated away, counted here, and reported via
/// the `pagestore.wal.replay_truncated` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed (members of committed batches, commits included).
    pub replayed_records: u64,
    /// Committed batches applied to the overlay.
    pub replayed_batches: u64,
    /// Well-formed records after the last commit, dropped as uncommitted.
    pub dropped_records: u64,
    /// Bytes of torn/CRC-corrupt tail discarded after the last parseable
    /// record.
    pub corrupt_tail_bytes: u64,
    /// Byte offset the log was truncated to (end of the last committed
    /// batch).
    pub truncated_at: u64,
}

impl RecoveryReport {
    /// Whether replay discarded anything (uncommitted or corrupt tail).
    pub fn truncated(&self) -> bool {
        self.dropped_records > 0 || self.corrupt_tail_bytes > 0
    }
}

/// A crash-safe page store: a [`PageStore`] plus a write-ahead log.
pub struct WalStore<S: PageStore> {
    inner: S,
    log: File,
    log_path: PathBuf,
    /// Uncheckpointed page contents (committed or not).
    overlay: HashMap<PageId, Option<Vec<u8>>>, // None = freed
    /// Pages allocated since the last checkpoint, in order.
    pending_allocs: Vec<PageId>,
    live_delta: isize,
    /// What the last [`WalStore::open`] replay found (None for `create`).
    recovery: Option<RecoveryReport>,
    /// Fsync the log every `group_commit`-th commit (1 = every commit).
    group_commit: u32,
    /// Commit markers appended since the last log fsync.
    commits_since_fsync: u32,
    /// Page ops appended since the last commit marker. While set, the
    /// store is mid-transaction and a checkpoint would make a partial
    /// logical mutation durable — [`WalStore::checkpoint_if_quiescent`]
    /// refuses exactly then.
    uncommitted_ops: bool,
}

impl<S: PageStore> WalStore<S> {
    /// Wrap `inner` with a fresh log at `log_path` (truncating any existing
    /// log — use [`WalStore::open`] to recover instead).
    pub fn create(inner: S, log_path: &Path) -> Result<Self> {
        let log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(log_path)?;
        Ok(WalStore {
            inner,
            log,
            log_path: log_path.to_path_buf(),
            overlay: HashMap::new(),
            pending_allocs: Vec::new(),
            live_delta: 0,
            recovery: None,
            group_commit: 1,
            commits_since_fsync: 0,
            uncommitted_ops: false,
        })
    }

    /// Wrap `inner`, replaying committed batches from an existing log.
    pub fn open(inner: S, log_path: &Path) -> Result<Self> {
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(log_path)?;
        let mut buf = Vec::new();
        log.read_to_end(&mut buf)?;
        let mut store = WalStore {
            inner,
            log,
            log_path: log_path.to_path_buf(),
            overlay: HashMap::new(),
            pending_allocs: Vec::new(),
            live_delta: 0,
            recovery: None,
            group_commit: 1,
            commits_since_fsync: 0,
            uncommitted_ops: false,
        };
        store.replay(&buf)?;
        Ok(store)
    }

    fn replay(&mut self, buf: &[u8]) -> Result<()> {
        // Parse records; apply batches up to each COMMIT; drop the tail.
        let mut pos = 0;
        // Offset just past the last commit marker — everything beyond it is
        // uncommitted and must be truncated away. Truncating only to `pos`
        // would retain parsed-but-uncommitted batch records in the file,
        // and the *next* commit appended after reopen would then commit
        // that stale half-batch.
        let mut committed_pos = 0;
        let mut report = RecoveryReport::default();
        let mut batch: Vec<(u8, PageId, Vec<u8>)> = Vec::new();
        // Minimum record: op(1) + page(4) + len(4) + crc(4) = 13 bytes.
        while pos + 13 <= buf.len() {
            let op = buf[pos];
            let page = PageId::from_bytes(buf[pos + 1..pos + 5].try_into().unwrap());
            let len = u32::from_le_bytes(buf[pos + 5..pos + 9].try_into().unwrap()) as usize;
            if pos + 9 + len + 4 > buf.len() {
                break; // torn record
            }
            let data = &buf[pos + 9..pos + 9 + len];
            let stored_crc =
                u32::from_le_bytes(buf[pos + 9 + len..pos + 13 + len].try_into().unwrap());
            if crc32(&buf[pos..pos + 9 + len]) != stored_crc {
                break; // corrupt tail
            }
            pos += 13 + len;
            if op == OP_COMMIT {
                report.replayed_records += batch.len() as u64 + 1;
                report.replayed_batches += 1;
                committed_pos = pos;
                for (op, page, data) in batch.drain(..) {
                    match op {
                        OP_WRITE => {
                            self.overlay.insert(page, Some(data));
                        }
                        OP_ALLOC => {
                            // Re-allocate from the inner store so ids line
                            // up; tolerate mismatch by trusting the log.
                            let got = self.inner.allocate()?;
                            if got != page {
                                // Inner had a different free list; map via
                                // overlay only.
                                self.inner.free(got).ok();
                            }
                            self.overlay
                                .insert(page, Some(vec![0u8; self.inner.page_size()]));
                            self.live_delta += 1;
                            self.pending_allocs.push(page);
                        }
                        OP_FREE => {
                            self.overlay.insert(page, None);
                            self.live_delta -= 1;
                        }
                        _ => {}
                    }
                }
            } else {
                batch.push((op, page, data.to_vec()));
            }
        }
        report.dropped_records = batch.len() as u64;
        report.corrupt_tail_bytes = (buf.len() - pos) as u64;
        report.truncated_at = committed_pos as u64;
        if report.truncated() {
            telemetry::counter("pagestore.wal.replay_truncated")
                .add(report.dropped_records + u64::from(report.corrupt_tail_bytes > 0));
        }
        self.recovery = Some(report);
        // The replayed state is durable in the log already; nothing to
        // re-append. Truncate to the end of the last committed batch and
        // position the cursor there.
        self.log.set_len(committed_pos as u64)?;
        self.log.seek(SeekFrom::Start(committed_pos as u64))?;
        Ok(())
    }

    fn append(&mut self, op: u8, page: PageId, data: &[u8]) -> Result<()> {
        let mut rec = Vec::with_capacity(13 + data.len());
        rec.push(op);
        rec.extend_from_slice(&page.to_bytes());
        rec.extend_from_slice(&(data.len() as u32).to_le_bytes());
        rec.extend_from_slice(data);
        let crc = crc32(&rec);
        rec.extend_from_slice(&crc.to_le_bytes());
        self.log.write_all(&rec)?;
        self.uncommitted_ops = op != OP_COMMIT;
        telemetry::counter("pagestore.wal.appends").inc();
        Ok(())
    }

    /// Fsync the log every `every`-th [`WalStore::commit`] instead of on
    /// each one (group commit). Batching amortizes the dominant disk cost
    /// at high commit rates; the trade is that a crash can lose up to
    /// `every - 1` commits that were appended but not yet fsynced (replay
    /// still recovers every *synced* commit, and never a torn one).
    /// [`WalStore::checkpoint`] and [`WalStore::sync_log`] always force
    /// the fsync. `every` is clamped to at least 1.
    pub fn set_group_commit(&mut self, every: u32) {
        self.group_commit = every.max(1);
    }

    /// The current group-commit interval (1 = fsync every commit).
    pub fn group_commit(&self) -> u32 {
        self.group_commit
    }

    /// Force an fsync of the log if any commits are pending one. Makes
    /// every commit appended so far durable regardless of the
    /// group-commit interval.
    pub fn sync_log(&mut self) -> Result<()> {
        if self.commits_since_fsync > 0 {
            self.log.sync_data()?;
            telemetry::counter("pagestore.wal.fsyncs").inc();
            self.commits_since_fsync = 0;
        }
        Ok(())
    }

    /// Append a commit marker; durable immediately, or at the next group
    /// fsync when [`WalStore::set_group_commit`] batching is on.
    pub fn commit(&mut self) -> Result<()> {
        self.append(OP_COMMIT, PageId::NULL, &[])?;
        telemetry::counter("pagestore.wal.commits").inc();
        self.commits_since_fsync += 1;
        if self.commits_since_fsync >= self.group_commit {
            self.log.sync_data()?;
            telemetry::counter("pagestore.wal.fsyncs").inc();
            self.commits_since_fsync = 0;
        }
        Ok(())
    }

    /// Apply the overlay to the backing store, sync it, and truncate the
    /// log. Implies a (durable) commit.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.commit()?;
        self.sync_log()?;
        // Apply the overlay WITHOUT consuming it: if a backing-store write
        // fails part-way through, the overlay and the intact log must
        // survive so the checkpoint can be retried (re-applying a page
        // write is idempotent) or the store recovered by replay.
        for (page, data) in &self.overlay {
            match data {
                Some(bytes) => self.inner.write(*page, bytes)?,
                // A retried checkpoint may free a page the first attempt
                // already freed — tolerate exactly that; a real I/O error
                // must propagate or the page would silently leak.
                None => match self.inner.free(*page) {
                    Ok(()) | Err(Error::PageNotFound(_)) => {}
                    Err(e) => return Err(e),
                },
            }
        }
        self.inner.sync()?;
        self.overlay.clear();
        self.pending_allocs.clear();
        self.live_delta = 0;
        self.log.set_len(0)?;
        self.log.seek(SeekFrom::Start(0))?;
        self.log.sync_data()?;
        telemetry::counter("pagestore.wal.checkpoints").inc();
        telemetry::counter("pagestore.wal.fsyncs").inc();
        Ok(())
    }

    /// Whether page ops were appended since the last commit marker —
    /// i.e. a logical transaction is in flight and checkpointing now
    /// would commit a partial mutation.
    pub fn has_uncommitted_ops(&self) -> bool {
        self.uncommitted_ops
    }

    /// Checkpoint only if the store is at a commit boundary (no ops since
    /// the last commit marker). This is the background checkpointer's
    /// entry point: it may run at an arbitrary moment relative to the
    /// writer, and must never turn a half-applied mutation durable.
    /// Returns whether a checkpoint ran (`Ok(true)` also when the overlay
    /// was already empty and there was nothing to apply).
    pub fn checkpoint_if_quiescent(&mut self) -> Result<bool> {
        if self.uncommitted_ops {
            return Ok(false);
        }
        if self.overlay.is_empty() && self.commits_since_fsync == 0 {
            // Nothing to apply and nothing pending an fsync: the log holds
            // at most already-durable commit markers. Skip the I/O.
            return Ok(true);
        }
        self.checkpoint()?;
        Ok(true)
    }

    /// The log file path (for crash-simulation tests).
    pub fn log_path(&self) -> &Path {
        &self.log_path
    }

    /// What the opening replay found and truncated, if this store was
    /// produced by [`WalStore::open`] (None after [`WalStore::create`]).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The backing store, read-only (for instrumentation).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the backing store, e.g. to arm a
    /// [`crate::FaultStore`] schedule. Mutating pages through this handle
    /// bypasses the log and forfeits crash safety.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Consume the wrapper, returning the backing store (without
    /// checkpointing — used by tests that simulate a crash).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PageStore> PageStore for WalStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> Result<PageId> {
        let id = self.inner.allocate()?;
        self.append(OP_ALLOC, id, &[])?;
        self.overlay
            .insert(id, Some(vec![0u8; self.inner.page_size()]));
        self.pending_allocs.push(id);
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        // Validate against overlay + inner.
        match self.overlay.get(&id) {
            Some(None) => return Err(Error::PageNotFound(id)),
            Some(Some(_)) => {}
            None => {
                // Probe the inner store without mutating it.
                let mut probe = vec![0u8; self.inner.page_size()];
                self.inner.read(id, &mut probe)?;
            }
        }
        self.append(OP_FREE, id, &[])?;
        self.overlay.insert(id, None);
        self.live_delta -= 1;
        Ok(())
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        match self.overlay.get(&id) {
            Some(Some(bytes)) => {
                if buf.len() != bytes.len() {
                    return Err(Error::BadPageSize {
                        expected: bytes.len(),
                        got: buf.len(),
                    });
                }
                buf.copy_from_slice(bytes);
                Ok(())
            }
            Some(None) => Err(Error::PageNotFound(id)),
            None => self.inner.read(id, buf),
        }
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.inner.page_size() {
            return Err(Error::BadPageSize {
                expected: self.inner.page_size(),
                got: buf.len(),
            });
        }
        match self.overlay.get(&id) {
            Some(None) => return Err(Error::PageNotFound(id)),
            Some(Some(_)) => {}
            None => {
                let mut probe = vec![0u8; self.inner.page_size()];
                self.inner.read(id, &mut probe)?;
            }
        }
        self.append(OP_WRITE, id, buf)?;
        self.overlay.insert(id, Some(buf.to_vec()));
        Ok(())
    }

    fn live_pages(&self) -> usize {
        (self.inner.live_pages() as isize + self.live_delta.min(0)) as usize
    }

    fn live_page_ids(&self) -> Vec<PageId> {
        // Inner ids adjusted by the overlay: allocations reach the inner
        // store eagerly, so the overlay only removes (freed) or confirms.
        let mut ids: BTreeSet<PageId> = self.inner.live_page_ids().into_iter().collect();
        for (page, data) in &self.overlay {
            match data {
                Some(_) => {
                    ids.insert(*page);
                }
                None => {
                    ids.remove(page);
                }
            }
        }
        ids.into_iter().collect()
    }

    fn sync(&mut self) -> Result<()> {
        self.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("walstore_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_commit_survives_reopen_without_checkpoint() {
        let path = tmp("commit");
        let inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            let a = s.allocate().unwrap();
            let mut buf = vec![0u8; 128];
            buf[0] = 42;
            s.write(a, &buf).unwrap();
            s.commit().unwrap();
            // Crash: no checkpoint — backing store never saw the write.
            s.into_inner()
        };
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 128];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 42, "committed write recovered from the log");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncommitted_tail_is_dropped() {
        let path = tmp("tail");
        let inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            let a = s.allocate().unwrap();
            let mut buf = vec![0u8; 128];
            buf[0] = 1;
            s.write(a, &buf).unwrap();
            s.commit().unwrap();
            // A second, uncommitted write.
            buf[0] = 99;
            s.write(a, &buf).unwrap();
            s.into_inner()
        };
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 128];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 1, "uncommitted write must not replay");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_record_is_ignored() {
        let path = tmp("torn");
        let inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            let a = s.allocate().unwrap();
            s.write(a, [7u8; 128].as_ref()).unwrap();
            s.commit().unwrap();
            s.into_inner()
        };
        // Corrupt the log tail: append garbage simulating a torn write.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[OP_WRITE, 0, 0, 0, 0, 128, 0, 0, 0, 1, 2, 3])
                .unwrap();
        }
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 128];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 7, "good prefix replays, torn tail ignored");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_reports_and_truncates_uncommitted_tail() {
        let path = tmp("report");
        let _inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            let a = s.allocate().unwrap();
            s.write(a, &[1u8; 128]).unwrap();
            s.commit().unwrap();
            // Two uncommitted records, then a torn fragment.
            s.write(a, &[2u8; 128]).unwrap();
            s.free(a).unwrap();
            s.into_inner()
        };
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[OP_WRITE, 0, 0, 0]).unwrap();
        }
        let committed_len = {
            let before = telemetry::counter_value("pagestore.wal.replay_truncated");
            let recovered = WalStore::open(MemStore::new(128), &path).unwrap();
            let r = *recovered.recovery().expect("open sets a recovery report");
            assert_eq!(r.replayed_batches, 1);
            assert_eq!(r.replayed_records, 3, "alloc + write + commit");
            assert_eq!(r.dropped_records, 2, "uncommitted write + free");
            assert_eq!(r.corrupt_tail_bytes, 4, "torn fragment");
            assert!(r.truncated());
            // 2 dropped records + 1 for the corrupt tail.
            assert_eq!(
                telemetry::counter_value("pagestore.wal.replay_truncated"),
                before + 3
            );
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                r.truncated_at,
                "log truncated to the end of the last committed batch"
            );
            r.truncated_at
        };
        // Regression: the uncommitted records must be GONE from the file.
        // Before the fix, replay truncated past them, so a commit appended
        // in the new session would resurrect the stale half-batch.
        let inner2 = {
            let mut s = WalStore::open(MemStore::new(128), &path).unwrap();
            assert_eq!(std::fs::metadata(&path).unwrap().len(), committed_len);
            s.commit().unwrap(); // empty batch — must commit nothing stale
            s.into_inner()
        };
        let mut recovered = WalStore::open(inner2, &path).unwrap();
        let mut out = vec![0u8; 128];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(
            out[0], 1,
            "post-reopen commit must not resurrect the uncommitted write"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_replay_reports_nothing_truncated() {
        let path = tmp("clean_report");
        let inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            let a = s.allocate().unwrap();
            s.write(a, &[9u8; 128]).unwrap();
            s.commit().unwrap();
            s.into_inner()
        };
        let recovered = WalStore::open(inner, &path).unwrap();
        let r = recovered.recovery().unwrap();
        assert!(!r.truncated());
        assert_eq!(r.replayed_batches, 1);
        assert_eq!(r.dropped_records, 0);
        assert_eq!(r.corrupt_tail_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn live_page_ids_sees_overlay() {
        let path = tmp("live_ids");
        let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.free(a).unwrap();
        assert_eq!(s.live_page_ids(), vec![b]);
        assert_eq!(s.live_page_ids().len(), s.live_pages());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_truncates_log_and_applies() {
        let path = tmp("checkpoint");
        let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
        let a = s.allocate().unwrap();
        s.write(a, [5u8; 128].as_ref()).unwrap();
        s.checkpoint().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // After checkpoint, the backing store has the data.
        let mut inner = s.into_inner();
        let mut out = vec![0u8; 128];
        inner.read(a, &mut out).unwrap();
        assert_eq!(out[0], 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_and_errors_through_wal() {
        let path = tmp("free");
        let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
        let a = s.allocate().unwrap();
        s.free(a).unwrap();
        let mut out = vec![0u8; 128];
        assert!(matches!(s.read(a, &mut out), Err(Error::PageNotFound(_))));
        assert!(matches!(s.free(a), Err(Error::PageNotFound(_))));
        assert!(matches!(
            s.write(a, &[0u8; 128]),
            Err(Error::PageNotFound(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let path = tmp("groupcommit");
        let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
        s.set_group_commit(4);
        let a = s.allocate().unwrap();
        let fsyncs0 = telemetry::counter_value("pagestore.wal.fsyncs");
        let commits0 = telemetry::counter_value("pagestore.wal.commits");
        for i in 0..8u8 {
            s.write(a, &[i; 128]).unwrap();
            s.commit().unwrap();
        }
        assert_eq!(
            telemetry::counter_value("pagestore.wal.commits"),
            commits0 + 8
        );
        assert_eq!(
            telemetry::counter_value("pagestore.wal.fsyncs"),
            fsyncs0 + 2,
            "8 commits at interval 4 = 2 fsyncs"
        );
        // A 9th commit is pending its group fsync; sync_log forces it.
        s.write(a, &[9; 128]).unwrap();
        s.commit().unwrap();
        assert_eq!(
            telemetry::counter_value("pagestore.wal.fsyncs"),
            fsyncs0 + 2
        );
        s.sync_log().unwrap();
        assert_eq!(
            telemetry::counter_value("pagestore.wal.fsyncs"),
            fsyncs0 + 3
        );
        // Nothing pending: sync_log is free.
        s.sync_log().unwrap();
        assert_eq!(
            telemetry::counter_value("pagestore.wal.fsyncs"),
            fsyncs0 + 3
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_forces_group_fsync() {
        let path = tmp("groupckpt");
        let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
        s.set_group_commit(1000);
        let a = s.allocate().unwrap();
        s.write(a, &[3u8; 128]).unwrap();
        s.commit().unwrap();
        // Checkpoint must not leave the pending commit unsynced.
        s.checkpoint().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let mut inner = s.into_inner();
        let mut out = vec![0u8; 128];
        inner.read(a, &mut out).unwrap();
        assert_eq!(out[0], 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsynced_commits_still_replay_when_bytes_reached_disk() {
        // Group commit defers fsync, not the write; if the OS got the
        // bytes (as in-process reopen always does), replay honours them.
        let path = tmp("groupreplay");
        let inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            s.set_group_commit(100);
            let a = s.allocate().unwrap();
            s.write(a, &[8u8; 128]).unwrap();
            s.commit().unwrap(); // appended, fsync pending
            s.into_inner()
        };
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 128];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn btree_over_wal_survives_crash() {
        // End-to-end: a B-tree built over a WAL-wrapped store recovers all
        // committed inserts.
        use crate::buffer::BufferPool;
        let path = tmp("btree");
        let inner = {
            let s = WalStore::create(MemStore::new(512), &path).unwrap();
            let pool = BufferPool::new(s, 1 << 12);
            let tree_pool = pool; // build "tree" manually via pages? Use raw pages.
            let (id, page) = tree_pool.allocate().unwrap();
            page.write()[..4].copy_from_slice(b"ROOT");
            drop(page);
            // flush dirty frames into the WAL, then commit (not checkpoint).
            tree_pool.flush_to_store_only().unwrap();
            let mut s = tree_pool.into_store();
            s.commit().unwrap();
            let _ = id;
            s.into_inner()
        };
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 512];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(&out[..4], b"ROOT");
        std::fs::remove_file(&path).ok();
    }
}
