//! Write-ahead logging: crash-safe page stores.
//!
//! [`WalStore`] wraps any [`PageStore`] and journals every mutation to an
//! append-only log before it reaches the backing store:
//!
//! * `allocate` / `free` / `write` append records to the log and are held
//!   in an in-memory overlay;
//! * [`WalStore::commit`] appends a commit marker and fsyncs the log — the
//!   batch is now durable;
//! * [`WalStore::checkpoint`] applies the overlay to the backing store,
//!   syncs it, and truncates the log;
//! * [`WalStore::open`] replays every *committed* batch from the log into
//!   the overlay; uncommitted tails (a crash mid-batch) are ignored.
//!
//! Records carry a CRC-32, so a torn final record is detected rather than
//! replayed. The overlay makes recovery idempotent: replay touches the
//! backing file only at the next checkpoint.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};
use crate::page::PageId;
use crate::store::PageStore;

const OP_WRITE: u8 = 1;
const OP_ALLOC: u8 = 2;
const OP_FREE: u8 = 3;
const OP_COMMIT: u8 = 4;

/// CRC-32 (IEEE), bitwise implementation — small and dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A crash-safe page store: a [`PageStore`] plus a write-ahead log.
pub struct WalStore<S: PageStore> {
    inner: S,
    log: File,
    log_path: PathBuf,
    /// Uncheckpointed page contents (committed or not).
    overlay: HashMap<PageId, Option<Vec<u8>>>, // None = freed
    /// Pages allocated since the last checkpoint, in order.
    pending_allocs: Vec<PageId>,
    live_delta: isize,
}

impl<S: PageStore> WalStore<S> {
    /// Wrap `inner` with a fresh log at `log_path` (truncating any existing
    /// log — use [`WalStore::open`] to recover instead).
    pub fn create(inner: S, log_path: &Path) -> Result<Self> {
        let log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(log_path)?;
        Ok(WalStore {
            inner,
            log,
            log_path: log_path.to_path_buf(),
            overlay: HashMap::new(),
            pending_allocs: Vec::new(),
            live_delta: 0,
        })
    }

    /// Wrap `inner`, replaying committed batches from an existing log.
    pub fn open(inner: S, log_path: &Path) -> Result<Self> {
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(log_path)?;
        let mut buf = Vec::new();
        log.read_to_end(&mut buf)?;
        let mut store = WalStore {
            inner,
            log,
            log_path: log_path.to_path_buf(),
            overlay: HashMap::new(),
            pending_allocs: Vec::new(),
            live_delta: 0,
        };
        store.replay(&buf)?;
        Ok(store)
    }

    fn replay(&mut self, buf: &[u8]) -> Result<()> {
        // Parse records; apply batches up to each COMMIT; drop the tail.
        let mut pos = 0;
        let mut batch: Vec<(u8, PageId, Vec<u8>)> = Vec::new();
        // Minimum record: op(1) + page(4) + len(4) + crc(4) = 13 bytes.
        while pos + 13 <= buf.len() {
            let op = buf[pos];
            let page = PageId::from_bytes(buf[pos + 1..pos + 5].try_into().unwrap());
            let len = u32::from_le_bytes(buf[pos + 5..pos + 9].try_into().unwrap()) as usize;
            if pos + 9 + len + 4 > buf.len() {
                break; // torn record
            }
            let data = &buf[pos + 9..pos + 9 + len];
            let stored_crc =
                u32::from_le_bytes(buf[pos + 9 + len..pos + 13 + len].try_into().unwrap());
            if crc32(&buf[pos..pos + 9 + len]) != stored_crc {
                break; // corrupt tail
            }
            pos += 13 + len;
            if op == OP_COMMIT {
                for (op, page, data) in batch.drain(..) {
                    match op {
                        OP_WRITE => {
                            self.overlay.insert(page, Some(data));
                        }
                        OP_ALLOC => {
                            // Re-allocate from the inner store so ids line
                            // up; tolerate mismatch by trusting the log.
                            let got = self.inner.allocate()?;
                            if got != page {
                                // Inner had a different free list; map via
                                // overlay only.
                                self.inner.free(got).ok();
                            }
                            self.overlay
                                .insert(page, Some(vec![0u8; self.inner.page_size()]));
                            self.live_delta += 1;
                            self.pending_allocs.push(page);
                        }
                        OP_FREE => {
                            self.overlay.insert(page, None);
                            self.live_delta -= 1;
                        }
                        _ => {}
                    }
                }
            } else {
                batch.push((op, page, data.to_vec()));
            }
        }
        // The replayed state is durable in the log already; nothing to
        // re-append. Position the log cursor at the last committed record.
        self.log.set_len(pos as u64)?;
        self.log.seek(SeekFrom::Start(pos as u64))?;
        Ok(())
    }

    fn append(&mut self, op: u8, page: PageId, data: &[u8]) -> Result<()> {
        let mut rec = Vec::with_capacity(13 + data.len());
        rec.push(op);
        rec.extend_from_slice(&page.to_bytes());
        rec.extend_from_slice(&(data.len() as u32).to_le_bytes());
        rec.extend_from_slice(data);
        let crc = crc32(&rec);
        rec.extend_from_slice(&crc.to_le_bytes());
        self.log.write_all(&rec)?;
        telemetry::counter("pagestore.wal.appends").inc();
        Ok(())
    }

    /// Make everything since the last commit durable.
    pub fn commit(&mut self) -> Result<()> {
        self.append(OP_COMMIT, PageId::NULL, &[])?;
        self.log.sync_data()?;
        telemetry::counter("pagestore.wal.commits").inc();
        telemetry::counter("pagestore.wal.fsyncs").inc();
        Ok(())
    }

    /// Apply the overlay to the backing store, sync it, and truncate the
    /// log. Implies a commit.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.commit()?;
        // Apply the overlay WITHOUT consuming it: if a backing-store write
        // fails part-way through, the overlay and the intact log must
        // survive so the checkpoint can be retried (re-applying a page
        // write is idempotent) or the store recovered by replay.
        for (page, data) in &self.overlay {
            match data {
                Some(bytes) => self.inner.write(*page, bytes)?,
                // A retried checkpoint may free a page the first attempt
                // already freed — tolerate exactly that; a real I/O error
                // must propagate or the page would silently leak.
                None => match self.inner.free(*page) {
                    Ok(()) | Err(Error::PageNotFound(_)) => {}
                    Err(e) => return Err(e),
                },
            }
        }
        self.inner.sync()?;
        self.overlay.clear();
        self.pending_allocs.clear();
        self.live_delta = 0;
        self.log.set_len(0)?;
        self.log.seek(SeekFrom::Start(0))?;
        self.log.sync_data()?;
        telemetry::counter("pagestore.wal.checkpoints").inc();
        telemetry::counter("pagestore.wal.fsyncs").inc();
        Ok(())
    }

    /// The log file path (for crash-simulation tests).
    pub fn log_path(&self) -> &Path {
        &self.log_path
    }

    /// The backing store, read-only (for instrumentation).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the backing store, e.g. to arm a
    /// [`crate::FaultStore`] schedule. Mutating pages through this handle
    /// bypasses the log and forfeits crash safety.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Consume the wrapper, returning the backing store (without
    /// checkpointing — used by tests that simulate a crash).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PageStore> PageStore for WalStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> Result<PageId> {
        let id = self.inner.allocate()?;
        self.append(OP_ALLOC, id, &[])?;
        self.overlay
            .insert(id, Some(vec![0u8; self.inner.page_size()]));
        self.pending_allocs.push(id);
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        // Validate against overlay + inner.
        match self.overlay.get(&id) {
            Some(None) => return Err(Error::PageNotFound(id)),
            Some(Some(_)) => {}
            None => {
                // Probe the inner store without mutating it.
                let mut probe = vec![0u8; self.inner.page_size()];
                self.inner.read(id, &mut probe)?;
            }
        }
        self.append(OP_FREE, id, &[])?;
        self.overlay.insert(id, None);
        self.live_delta -= 1;
        Ok(())
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        match self.overlay.get(&id) {
            Some(Some(bytes)) => {
                if buf.len() != bytes.len() {
                    return Err(Error::BadPageSize {
                        expected: bytes.len(),
                        got: buf.len(),
                    });
                }
                buf.copy_from_slice(bytes);
                Ok(())
            }
            Some(None) => Err(Error::PageNotFound(id)),
            None => self.inner.read(id, buf),
        }
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.inner.page_size() {
            return Err(Error::BadPageSize {
                expected: self.inner.page_size(),
                got: buf.len(),
            });
        }
        match self.overlay.get(&id) {
            Some(None) => return Err(Error::PageNotFound(id)),
            Some(Some(_)) => {}
            None => {
                let mut probe = vec![0u8; self.inner.page_size()];
                self.inner.read(id, &mut probe)?;
            }
        }
        self.append(OP_WRITE, id, buf)?;
        self.overlay.insert(id, Some(buf.to_vec()));
        Ok(())
    }

    fn live_pages(&self) -> usize {
        (self.inner.live_pages() as isize + self.live_delta.min(0)) as usize
    }

    fn sync(&mut self) -> Result<()> {
        self.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("walstore_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_commit_survives_reopen_without_checkpoint() {
        let path = tmp("commit");
        let inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            let a = s.allocate().unwrap();
            let mut buf = vec![0u8; 128];
            buf[0] = 42;
            s.write(a, &buf).unwrap();
            s.commit().unwrap();
            // Crash: no checkpoint — backing store never saw the write.
            s.into_inner()
        };
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 128];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 42, "committed write recovered from the log");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncommitted_tail_is_dropped() {
        let path = tmp("tail");
        let inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            let a = s.allocate().unwrap();
            let mut buf = vec![0u8; 128];
            buf[0] = 1;
            s.write(a, &buf).unwrap();
            s.commit().unwrap();
            // A second, uncommitted write.
            buf[0] = 99;
            s.write(a, &buf).unwrap();
            s.into_inner()
        };
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 128];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 1, "uncommitted write must not replay");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_record_is_ignored() {
        let path = tmp("torn");
        let inner = {
            let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
            let a = s.allocate().unwrap();
            s.write(a, [7u8; 128].as_ref()).unwrap();
            s.commit().unwrap();
            s.into_inner()
        };
        // Corrupt the log tail: append garbage simulating a torn write.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[OP_WRITE, 0, 0, 0, 0, 128, 0, 0, 0, 1, 2, 3])
                .unwrap();
        }
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 128];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 7, "good prefix replays, torn tail ignored");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_truncates_log_and_applies() {
        let path = tmp("checkpoint");
        let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
        let a = s.allocate().unwrap();
        s.write(a, [5u8; 128].as_ref()).unwrap();
        s.checkpoint().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // After checkpoint, the backing store has the data.
        let mut inner = s.into_inner();
        let mut out = vec![0u8; 128];
        inner.read(a, &mut out).unwrap();
        assert_eq!(out[0], 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_and_errors_through_wal() {
        let path = tmp("free");
        let mut s = WalStore::create(MemStore::new(128), &path).unwrap();
        let a = s.allocate().unwrap();
        s.free(a).unwrap();
        let mut out = vec![0u8; 128];
        assert!(matches!(s.read(a, &mut out), Err(Error::PageNotFound(_))));
        assert!(matches!(s.free(a), Err(Error::PageNotFound(_))));
        assert!(matches!(
            s.write(a, &[0u8; 128]),
            Err(Error::PageNotFound(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn btree_over_wal_survives_crash() {
        // End-to-end: a B-tree built over a WAL-wrapped store recovers all
        // committed inserts.
        use crate::buffer::BufferPool;
        let path = tmp("btree");
        let inner = {
            let s = WalStore::create(MemStore::new(512), &path).unwrap();
            let pool = BufferPool::new(s, 1 << 12);
            let mut tree_pool = pool; // build "tree" manually via pages? Use raw pages.
            let (id, page) = tree_pool.allocate().unwrap();
            page.write()[..4].copy_from_slice(b"ROOT");
            drop(page);
            // flush dirty frames into the WAL, then commit (not checkpoint).
            tree_pool.flush_to_store_only().unwrap();
            let mut s = tree_pool.into_store();
            s.commit().unwrap();
            let _ = id;
            s.into_inner()
        };
        let mut recovered = WalStore::open(inner, &path).unwrap();
        let mut out = vec![0u8; 512];
        recovered.read(PageId(0), &mut out).unwrap();
        assert_eq!(&out[..4], b"ROOT");
        std::fs::remove_file(&path).ok();
    }
}
