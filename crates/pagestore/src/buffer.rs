use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{Error, Result};
use crate::page::PageId;
use crate::store::PageStore;

/// Unpoison a mutex: a panicking holder leaves the data in whatever state
/// the panic found it, which for this pool is always structurally sound
/// (worst case: a frame stays dirty and is written back again later).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// A frame holding one page's bytes in memory, shareable across threads.
struct Frame {
    id: PageId,
    data: RwLock<Box<[u8]>>,
    /// Decoded representation of the current bytes (e.g. a B-tree node),
    /// type-erased so this layer stays ignorant of what lives in a page.
    /// Invariant: any cached value was produced from the *current* bytes —
    /// [`PageRef::write`] clears it under the exclusive data lock, and
    /// readers only populate it while holding the shared data lock.
    decoded: RwLock<Option<Arc<dyn Any + Send + Sync>>>,
    dirty: AtomicBool,
    last_use: AtomicU64,
}

/// A handle to a buffered page.
///
/// Holding a `PageRef` pins the page: it cannot be evicted while any handle
/// is alive. Access the bytes with [`PageRef::read`] / [`PageRef::write`]
/// (the latter marks the page dirty).
#[derive(Clone)]
pub struct PageRef {
    frame: Arc<Frame>,
}

/// Shared borrow of a page's bytes (see [`PageRef::read`]).
pub struct PageReadGuard<'a> {
    guard: RwLockReadGuard<'a, Box<[u8]>>,
}

impl Deref for PageReadGuard<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

/// Exclusive borrow of a page's bytes (see [`PageRef::write`]).
pub struct PageWriteGuard<'a> {
    guard: RwLockWriteGuard<'a, Box<[u8]>>,
}

impl Deref for PageWriteGuard<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

impl PageRef {
    /// The id of the buffered page.
    pub fn id(&self) -> PageId {
        self.frame.id
    }

    /// Borrow the page bytes immutably.
    pub fn read(&self) -> PageReadGuard<'_> {
        PageReadGuard {
            guard: read_lock(&self.frame.data),
        }
    }

    /// Borrow the page bytes mutably and mark the page dirty. Any cached
    /// decode is dropped — it described the old bytes.
    pub fn write(&self) -> PageWriteGuard<'_> {
        let guard = write_lock(&self.frame.data);
        self.frame.dirty.store(true, Ordering::Relaxed);
        *write_lock(&self.frame.decoded) = None;
        PageWriteGuard { guard }
    }

    /// Whether the page has unwritten modifications.
    pub fn is_dirty(&self) -> bool {
        self.frame.dirty.load(Ordering::Relaxed)
    }

    /// Return the cached decoded form of this page, running `decode` on the
    /// current bytes if none is cached. The cache is invalidated by
    /// [`PageRef::write`], so a cached value always matches the bytes.
    ///
    /// Readers decode under the shared data lock; a writer cannot clear the
    /// slot in between, so a stale decode can never be (re)published.
    pub fn get_or_decode<T, E, F>(&self, decode: F) -> std::result::Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&[u8]) -> std::result::Result<T, E>,
    {
        let data = read_lock(&self.frame.data);
        if let Some(any) = read_lock(&self.frame.decoded).clone() {
            if let Ok(hit) = any.downcast::<T>() {
                return Ok(hit);
            }
        }
        let value = Arc::new(decode(&data)?);
        *write_lock(&self.frame.decoded) = Some(value.clone());
        Ok(value)
    }

    /// Whether a decoded form is currently cached for this page.
    pub fn has_decoded(&self) -> bool {
        read_lock(&self.frame.decoded).is_some()
    }
}

/// Cumulative buffer-pool statistics since creation (or the last
/// [`BufferPool::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pages read from the backing store (cache misses).
    pub physical_reads: u64,
    /// Pages written back to the backing store.
    pub physical_writes: u64,
    /// All fetch calls, hits and misses alike.
    pub logical_fetches: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
}

#[derive(Default)]
struct AtomicPoolStats {
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    logical_fetches: AtomicU64,
    allocations: AtomicU64,
    frees: AtomicU64,
}

impl AtomicPoolStats {
    fn snapshot(&self) -> PoolStats {
        PoolStats {
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            logical_fetches: self.logical_fetches.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.logical_fetches.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
    }
}

/// Per-query access statistics, reset by [`BufferPool::begin_query`].
///
/// `distinct_pages` is the paper's metric: the number of different pages the
/// query touched, counting a page once no matter how often it is revisited —
/// the paper's retrieval algorithm explicitly "utilizes any page which is
/// already in memory".
///
/// Queries are a per-thread notion: each worker thread runs its own query
/// stream, so the counters live in thread-local storage keyed by pool.
/// `begin_query` and `query_stats` therefore always refer to the calling
/// thread's current query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Distinct pages touched since `begin_query`.
    pub distinct_pages: u64,
    /// Total fetch calls since `begin_query` (revisits included).
    pub node_visits: u64,
}

/// Largest `touched` bitmap (one `u64` per page id) carried across
/// queries; [`BufferPool::begin_query`] sheds anything bigger.
const TOUCHED_RETAIN_LIMIT: usize = 1 << 12;

/// Per-thread, per-pool query accounting state.
struct QueryState {
    stats: QueryStats,
    /// `touched[page] == epoch` means the page was already counted for the
    /// current query. Indexed by raw page id; grows on demand.
    touched: Vec<u64>,
    epoch: u64,
}

impl Default for QueryState {
    fn default() -> Self {
        QueryState {
            stats: QueryStats::default(),
            touched: Vec::new(),
            // Starts at 1 so zero-initialized `touched` slots read as
            // not-yet-counted even before the first `begin_query`.
            epoch: 1,
        }
    }
}

impl QueryState {
    fn begin(&mut self) {
        self.epoch += 1;
        self.stats = QueryStats::default();
        // `touched` grows to the highest page id a query ever visits and
        // would otherwise stay that large for the thread's lifetime. Epochs
        // make stale entries harmless, so shedding the memory is free.
        if self.touched.len() > TOUCHED_RETAIN_LIMIT {
            self.touched.clear();
            self.touched.shrink_to(TOUCHED_RETAIN_LIMIT);
        }
    }

    fn touch(&mut self, id: PageId) {
        self.stats.node_visits += 1;
        let idx = id.index();
        if idx >= self.touched.len() {
            self.touched.resize(idx + 1, 0);
        }
        if self.touched[idx] != self.epoch {
            self.touched[idx] = self.epoch;
            self.stats.distinct_pages += 1;
        }
    }
}

thread_local! {
    /// Query state for every pool this thread has touched. A thread almost
    /// always works against one pool, so the map stays tiny.
    static QUERY_STATE: RefCell<HashMap<u64, QueryState>> = RefCell::new(HashMap::new());
}

fn with_query_state<R>(pool_id: u64, f: impl FnOnce(&mut QueryState) -> R) -> R {
    QUERY_STATE.with(|m| f(m.borrow_mut().entry(pool_id).or_default()))
}

/// Retry policy for transient read failures at fetch time.
///
/// Only [`Error::Io`] is retried: corruption ([`Error::is_corruption`])
/// means the bytes on the page are wrong and re-reading them cannot help,
/// and the remaining errors are caller mistakes. The default policy makes
/// a single attempt — retry is opt-in, because fault-injection tests rely
/// on one scheduled `IoError` producing exactly one failed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total read attempts, including the first. `1` disables retry.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on each further retry.
    /// [`std::time::Duration::ZERO`] (the default) never sleeps.
    pub backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: std::time::Duration::ZERO,
        }
    }
}

/// Registry handles, resolved once per thread so the hot path pays one
/// `Cell` bump per event (see DESIGN.md §9 for the catalog). These are
/// thread-local because the telemetry registry itself is: each worker
/// thread accumulates its own counters and the coordinator merges them
/// (see `telemetry::absorb`).
struct PoolMetrics {
    hits: telemetry::Counter,
    misses: telemetry::Counter,
    read_errors: telemetry::Counter,
    evictions: telemetry::Counter,
    writebacks: telemetry::Counter,
    allocations: telemetry::Counter,
    frees: telemetry::Counter,
    retry_attempts: telemetry::Counter,
    retry_successes: telemetry::Counter,
    retry_exhausted: telemetry::Counter,
}

impl PoolMetrics {
    fn new() -> Self {
        PoolMetrics {
            hits: telemetry::counter("pagestore.pool.hits"),
            misses: telemetry::counter("pagestore.pool.misses"),
            read_errors: telemetry::counter("pagestore.pool.read_errors"),
            evictions: telemetry::counter("pagestore.pool.evictions"),
            writebacks: telemetry::counter("pagestore.pool.writebacks"),
            allocations: telemetry::counter("pagestore.pool.allocations"),
            frees: telemetry::counter("pagestore.pool.frees"),
            retry_attempts: telemetry::counter("pagestore.pool.retries"),
            retry_successes: telemetry::counter("pagestore.pool.retry_successes"),
            retry_exhausted: telemetry::counter("pagestore.pool.retry_exhausted"),
        }
    }
}

thread_local! {
    static POOL_METRICS: PoolMetrics = PoolMetrics::new();
}

fn metrics<R>(f: impl FnOnce(&PoolMetrics) -> R) -> R {
    POOL_METRICS.with(f)
}

/// One lock-striped partition of the frame table.
struct Shard {
    frames: HashMap<PageId, Arc<Frame>>,
    /// Per-shard LRU clock; frames stamp `last_use` from it on access.
    clock: u64,
    capacity: usize,
}

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// A thread-safe buffer pool: the frame table is sharded into lock-striped
/// partitions (hash on page id, per-shard LRU clock), the backing store sits
/// behind its own mutex that is only taken on misses and write-backs, and
/// the cumulative statistics are atomics. Pages pin via [`PageRef`] handles
/// and carry an optional decoded-value cache for the layer above.
///
/// Lock order (see DESIGN.md §12): shard → store → frame data. A shard lock
/// is never taken while holding the store lock, and no two shard locks are
/// ever held together.
pub struct BufferPool<S: PageStore> {
    store: Mutex<S>,
    shards: Box<[Mutex<Shard>]>,
    shard_mask: u64,
    page_size: usize,
    stats: AtomicPoolStats,
    /// Distinguishes this pool's thread-local query state from other pools'.
    pool_id: u64,
    retry: Mutex<RetryPolicy>,
}

impl<S: PageStore> BufferPool<S> {
    /// Create a pool over `store` holding at most (approximately) `capacity`
    /// unpinned frames, spread over power-of-two many shards.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        // Enough shards that concurrent readers rarely collide, but never
        // more than the capacity can populate (tiny test pools get tiny
        // shard counts so eviction still triggers at the advertised size).
        let nshards = prev_power_of_two(capacity.min(64));
        let per_shard = (capacity / nshards).max(1);
        let shards = (0..nshards)
            .map(|_| {
                Mutex::new(Shard {
                    frames: HashMap::new(),
                    clock: 0,
                    capacity: per_shard,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let page_size = store.page_size();
        BufferPool {
            store: Mutex::new(store),
            shards,
            shard_mask: (nshards - 1) as u64,
            page_size,
            stats: AtomicPoolStats::default(),
            pool_id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            retry: Mutex::new(RetryPolicy::default()),
        }
    }

    fn shard_for(&self, id: PageId) -> &Mutex<Shard> {
        // Fibonacci hash spreads the dense, sequential page ids the stores
        // hand out evenly across shards.
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.shard_mask) as usize]
    }

    /// Number of shards the frame table is striped over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Replace the fetch-time [`RetryPolicy`] (single-attempt by default).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *lock(&self.retry) = policy;
    }

    /// The current fetch-time retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *lock(&self.retry)
    }

    /// The fixed page size of the backing store.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live pages in the backing store.
    pub fn live_pages(&self) -> usize {
        lock(&self.store).live_pages()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats.snapshot()
    }

    /// Zero the cumulative statistics.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Start a new query *on the calling thread*: zeroes that thread's
    /// per-query counters. Every page fetched afterwards counts once
    /// towards [`QueryStats::distinct_pages`].
    pub fn begin_query(&self) {
        with_query_state(self.pool_id, |q| q.begin());
    }

    /// The calling thread's per-query counters accumulated since its last
    /// [`BufferPool::begin_query`].
    pub fn query_stats(&self) -> QueryStats {
        with_query_state(self.pool_id, |q| q.stats)
    }

    #[cfg(test)]
    fn touched_len(&self) -> usize {
        with_query_state(self.pool_id, |q| q.touched.len())
    }

    #[cfg(test)]
    fn touched_capacity(&self) -> usize {
        with_query_state(self.pool_id, |q| q.touched.capacity())
    }

    fn touch_for_query(&self, id: PageId) {
        with_query_state(self.pool_id, |q| q.touch(id));
    }

    /// Read a page, retrying transient [`Error::Io`] failures under the
    /// configured [`RetryPolicy`]. Corruption and caller errors surface
    /// immediately — see the policy docs.
    fn read_with_retry(&self, store: &mut S, id: PageId, buf: &mut [u8]) -> Result<()> {
        let retry = *lock(&self.retry);
        let mut attempt = 1u32;
        loop {
            match store.read(id, buf) {
                Ok(()) => {
                    if attempt > 1 {
                        metrics(|m| m.retry_successes.inc());
                    }
                    return Ok(());
                }
                Err(Error::Io(_)) if attempt < retry.max_attempts => {
                    metrics(|m| m.retry_attempts.inc());
                    if !retry.backoff.is_zero() {
                        let shift = (attempt - 1).min(10);
                        std::thread::sleep(retry.backoff * (1u32 << shift));
                    }
                    attempt += 1;
                }
                Err(e) => {
                    if attempt > 1 {
                        metrics(|m| m.retry_exhausted.inc());
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Fetch a page, reading it from the store on a miss.
    ///
    /// A fetch whose store read fails counts towards *no* access statistic
    /// except `pagestore.pool.read_errors`: the caller never saw a page, so
    /// neither the cumulative nor the per-query counters may move.
    /// The cached frame for `id`, if resident — without counting a fetch,
    /// touching per-query state, or reading the store. Diagnostics and
    /// cache-inspection tests only.
    pub fn peek(&self, id: PageId) -> Option<PageRef> {
        let shard = lock(self.shard_for(id));
        shard
            .frames
            .get(&id)
            .cloned()
            .map(|frame| PageRef { frame })
    }

    pub fn fetch(&self, id: PageId) -> Result<PageRef> {
        if id.is_null() {
            return Err(Error::InvalidPageId(id));
        }
        let mut shard = lock(self.shard_for(id));
        if let Some(frame) = shard.frames.get(&id).cloned() {
            shard.clock += 1;
            frame.last_use.store(shard.clock, Ordering::Relaxed);
            drop(shard);
            self.stats.logical_fetches.fetch_add(1, Ordering::Relaxed);
            self.touch_for_query(id);
            metrics(|m| m.hits.inc());
            return Ok(PageRef { frame });
        }
        // Miss: read from the store while still holding the shard lock, so
        // a concurrent fetch of the same page cannot install a second frame
        // (two frames for one page would fork its contents). The store has
        // its own mutex — this nesting is the pool's canonical lock order.
        let mut data = vec![0u8; self.page_size].into_boxed_slice();
        {
            let mut store = lock(&self.store);
            if let Err(e) = self.read_with_retry(&mut store, id, &mut data) {
                metrics(|m| m.read_errors.inc());
                return Err(e);
            }
        }
        self.stats.logical_fetches.fetch_add(1, Ordering::Relaxed);
        self.stats.physical_reads.fetch_add(1, Ordering::Relaxed);
        self.touch_for_query(id);
        metrics(|m| m.misses.inc());
        let frame = Arc::new(Frame {
            id,
            data: RwLock::new(data),
            decoded: RwLock::new(None),
            dirty: AtomicBool::new(false),
            last_use: AtomicU64::new(0),
        });
        shard.clock += 1;
        frame.last_use.store(shard.clock, Ordering::Relaxed);
        self.insert_frame(&mut shard, id, frame.clone())?;
        Ok(PageRef { frame })
    }

    /// Allocate a fresh zeroed page and return a handle to it.
    pub fn allocate(&self) -> Result<(PageId, PageRef)> {
        let id = lock(&self.store).allocate()?;
        self.stats.allocations.fetch_add(1, Ordering::Relaxed);
        metrics(|m| m.allocations.inc());
        self.touch_for_query(id);
        let frame = Arc::new(Frame {
            id,
            data: RwLock::new(vec![0u8; self.page_size].into_boxed_slice()),
            decoded: RwLock::new(None),
            dirty: AtomicBool::new(true),
            last_use: AtomicU64::new(0),
        });
        let mut shard = lock(self.shard_for(id));
        shard.clock += 1;
        frame.last_use.store(shard.clock, Ordering::Relaxed);
        self.insert_frame(&mut shard, id, frame.clone())?;
        Ok((id, PageRef { frame }))
    }

    /// Free a page, dropping its frame. The caller must not hold handles to
    /// it.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut shard = lock(self.shard_for(id));
        if let Some(frame) = shard.frames.remove(&id) {
            if Arc::strong_count(&frame) > 1 {
                // Put it back before failing so state stays consistent.
                shard.frames.insert(id, frame);
                return Err(Error::Corrupt(format!("freeing pinned page {id}")));
            }
        }
        // Count the free only once the store accepts it, so a failed free
        // (e.g. an unallocated id or an I/O error) leaves stats truthful.
        lock(&self.store).free(id)?;
        self.stats.frees.fetch_add(1, Ordering::Relaxed);
        metrics(|m| m.frees.inc());
        Ok(())
    }

    /// Write all dirty frames back to the store and sync it.
    pub fn flush(&self) -> Result<()> {
        self.flush_to_store_only()?;
        lock(&self.store).sync()
    }

    /// Write all dirty frames back to the store *without* syncing it
    /// (lets a [`crate::WalStore`] caller choose commit vs checkpoint).
    ///
    /// Must not be called while the calling thread holds a
    /// [`PageRef::write`] guard (it would self-deadlock on the frame's
    /// data lock). The single-writer discipline of the layers above
    /// guarantees no *other* thread holds write guards.
    pub fn flush_to_store_only(&self) -> Result<()> {
        for shard in self.shards.iter() {
            let shard = lock(shard);
            for (id, frame) in &shard.frames {
                if frame.dirty.load(Ordering::Relaxed) {
                    let data = read_lock(&frame.data);
                    lock(&self.store).write(*id, &data)?;
                    frame.dirty.store(false, Ordering::Relaxed);
                    self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
                    metrics(|m| m.writebacks.inc());
                }
            }
        }
        Ok(())
    }

    /// Drop every unpinned frame, writing dirty ones back first. Later
    /// fetches must re-read from the backing store, which forces a
    /// checksum layer underneath to re-verify pages a large cache would
    /// otherwise keep serving from memory. Pinned frames survive.
    pub fn invalidate_cache(&self) -> Result<()> {
        for shard in self.shards.iter() {
            let mut shard = lock(shard);
            let victims: Vec<PageId> = shard
                .frames
                .iter()
                .filter(|(_, f)| Arc::strong_count(f) == 1)
                .map(|(id, _)| *id)
                .collect();
            for id in victims {
                let frame = shard.frames.remove(&id).expect("victim exists");
                if frame.dirty.load(Ordering::Relaxed) {
                    let data = read_lock(&frame.data);
                    lock(&self.store).write(id, &data)?;
                    self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
                    metrics(|m| m.writebacks.inc());
                }
            }
        }
        Ok(())
    }

    /// Consume the pool, returning the backing store. Dirty frames are NOT
    /// written back — call [`BufferPool::flush`] or
    /// [`BufferPool::flush_to_store_only`] first.
    pub fn into_store(self) -> S {
        self.store.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Caller holds the shard lock. May take the store lock to write back a
    /// victim — never the other way around.
    fn insert_frame(&self, shard: &mut Shard, id: PageId, frame: Arc<Frame>) -> Result<()> {
        while shard.frames.len() >= shard.capacity {
            if !self.evict_one(shard)? {
                break; // everything is pinned; allow temporary overflow
            }
        }
        shard.frames.insert(id, frame);
        Ok(())
    }

    fn evict_one(&self, shard: &mut Shard) -> Result<bool> {
        let victim = shard
            .frames
            .iter()
            .filter(|(_, f)| Arc::strong_count(f) == 1)
            .min_by_key(|(_, f)| f.last_use.load(Ordering::Relaxed))
            .map(|(id, _)| *id);
        let Some(id) = victim else {
            return Ok(false);
        };
        let frame = shard.frames.remove(&id).expect("victim exists");
        if frame.dirty.load(Ordering::Relaxed) {
            // Write back under the shard lock: once the frame leaves the
            // map a concurrent fetch would re-read the stale store copy.
            let data = read_lock(&frame.data);
            lock(&self.store).write(id, &data)?;
            self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
            metrics(|m| m.writebacks.inc());
        }
        metrics(|m| m.evictions.inc());
        Ok(true)
    }

    /// Lock the backing store for direct access — e.g. to call
    /// [`crate::WalStore::commit`] on a WAL-backed pool after
    /// [`BufferPool::flush_to_store_only`], or to inject faults in tests.
    /// Mutating page contents through this handle bypasses the cache;
    /// prefer the pool's own methods.
    ///
    /// Never call this while holding it already (the mutex is not
    /// reentrant); the pool itself only takes the store lock with at most
    /// one shard lock held.
    pub fn store_lock(&self) -> MutexGuard<'_, S> {
        lock(&self.store)
    }
}

fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n > 0);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(cap: usize) -> BufferPool<MemStore> {
        BufferPool::new(MemStore::new(128), cap)
    }

    #[test]
    fn fetch_counts_distinct_once() {
        let p = pool(8);
        let (a, _) = p.allocate().unwrap();
        let (b, _) = p.allocate().unwrap();
        p.begin_query();
        p.fetch(a).unwrap();
        p.fetch(a).unwrap();
        p.fetch(b).unwrap();
        p.fetch(a).unwrap();
        let qs = p.query_stats();
        assert_eq!(qs.distinct_pages, 2);
        assert_eq!(qs.node_visits, 4);
    }

    #[test]
    fn begin_query_resets() {
        let p = pool(8);
        let (a, _) = p.allocate().unwrap();
        p.begin_query();
        p.fetch(a).unwrap();
        assert_eq!(p.query_stats().distinct_pages, 1);
        p.begin_query();
        assert_eq!(p.query_stats().distinct_pages, 0);
        p.fetch(a).unwrap();
        assert_eq!(p.query_stats().distinct_pages, 1);
    }

    #[test]
    fn eviction_and_reload() {
        let p = pool(2);
        let mut ids = Vec::new();
        for i in 0..4u8 {
            let (id, page) = p.allocate().unwrap();
            page.write()[0] = i;
            ids.push(id);
        }
        // All pages were unpinned after each allocation; at least two must
        // have been evicted (written back since dirty) whichever shards the
        // four ids hashed to. Fetch them again and check.
        for (i, id) in ids.iter().enumerate() {
            let page = p.fetch(*id).unwrap();
            assert_eq!(page.read()[0], i as u8);
        }
        assert!(p.stats().physical_writes >= 2);
        assert!(p.stats().physical_reads >= 2);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let (a, pin_a) = p.allocate().unwrap();
        pin_a.write()[0] = 77;
        // Allocate many more pages than capacity while `a` stays pinned.
        for _ in 0..8 {
            let _ = p.allocate().unwrap();
        }
        assert_eq!(pin_a.read()[0], 77);
        drop(pin_a);
        let again = p.fetch(a).unwrap();
        assert_eq!(again.read()[0], 77);
    }

    #[test]
    fn free_pinned_fails() {
        let p = pool(4);
        let (a, pin) = p.allocate().unwrap();
        assert!(p.free(a).is_err());
        drop(pin);
        p.free(a).unwrap();
        assert!(p.fetch(a).is_err());
    }

    #[test]
    fn flush_persists_dirty_pages() {
        let p = pool(4);
        let (a, page) = p.allocate().unwrap();
        page.write()[5] = 99;
        drop(page);
        p.flush().unwrap();
        assert!(p.stats().physical_writes >= 1);
        let page = p.fetch(a).unwrap();
        assert_eq!(page.read()[5], 99);
    }

    #[test]
    fn fetch_null_fails() {
        let p = pool(4);
        assert!(p.fetch(PageId::NULL).is_err());
    }

    #[test]
    fn failed_free_does_not_count() {
        let p = pool(4);
        let (a, _) = p.allocate().unwrap();
        p.free(a).unwrap();
        assert_eq!(p.stats().frees, 1);
        // Freeing the same page again fails in the store — the counter
        // must not move (it used to be incremented before the store call).
        assert!(p.free(a).is_err());
        assert_eq!(p.stats().frees, 1);
        assert!(p.free(PageId(999)).is_err());
        assert_eq!(p.stats().frees, 1);
    }

    #[test]
    fn faulted_fetch_is_not_counted_as_access() {
        use crate::fault::{Fault, FaultStore};
        let p = BufferPool::new(FaultStore::new(MemStore::new(128)), 2);
        let (a, _) = p.allocate().unwrap();
        // Push `a` out of the pool so the next fetch must hit the store.
        p.invalidate_cache().unwrap();
        p.begin_query();
        let before = p.stats();
        let hits_before = telemetry::counter_value("pagestore.pool.hits");
        let misses_before = telemetry::counter_value("pagestore.pool.misses");
        let errors_before = telemetry::counter_value("pagestore.pool.read_errors");
        let at = p.store_lock().ops();
        p.store_lock().inject(at, Fault::IoError);
        assert!(p.fetch(a).is_err());
        let after = p.stats();
        // The failed fetch reached no page: every access statistic must be
        // unchanged, cumulative and per-query alike.
        assert_eq!(after.logical_fetches, before.logical_fetches);
        assert_eq!(after.physical_reads, before.physical_reads);
        assert_eq!(p.query_stats(), QueryStats::default());
        assert_eq!(telemetry::counter_value("pagestore.pool.hits"), hits_before);
        assert_eq!(
            telemetry::counter_value("pagestore.pool.misses"),
            misses_before
        );
        assert_eq!(
            telemetry::counter_value("pagestore.pool.read_errors"),
            errors_before + 1
        );
        // The page itself is fine; a retry succeeds and counts normally.
        p.fetch(a).unwrap();
        assert_eq!(p.stats().logical_fetches, before.logical_fetches + 1);
        assert_eq!(p.query_stats().node_visits, 1);
    }

    #[test]
    fn stats_stay_monotonic_across_crash_and_recovery() {
        use crate::fault::{Fault, FaultStore};
        let p = BufferPool::new(FaultStore::new(MemStore::new(128)), 2);
        let mut ids = Vec::new();
        for i in 0..4u8 {
            let (id, page) = p.allocate().unwrap();
            page.write()[0] = i;
            ids.push(id);
        }
        // Make sure nothing is cached so fetches hit the faulted store.
        p.flush_to_store_only().unwrap();
        p.invalidate_cache().unwrap();
        let pre_crash = p.stats();
        let at = p.store_lock().ops();
        p.store_lock().inject(at, Fault::Crash);
        // Everything fails while crashed; counters must not move backwards
        // (or at all — no page access completes).
        assert!(p.fetch(ids[0]).is_err() || p.fetch(ids[1]).is_err());
        let crashed = p.stats();
        assert!(crashed.logical_fetches >= pre_crash.logical_fetches);
        assert_eq!(crashed.physical_reads, pre_crash.physical_reads);
        // "Repair the disk" and recover: counters resume from where they
        // were, still monotonic.
        p.store_lock().clear_faults();
        for (i, id) in ids.iter().enumerate() {
            let page = p.fetch(*id).unwrap();
            assert_eq!(page.read()[0], i as u8);
        }
        let recovered = p.stats();
        assert!(recovered.logical_fetches > crashed.logical_fetches);
        assert!(recovered.physical_reads >= crashed.physical_reads);
        assert!(recovered.physical_writes >= crashed.physical_writes);
    }

    #[test]
    fn retry_policy_recovers_transient_io_error() {
        use crate::fault::{Fault, FaultStore};
        let p = BufferPool::new(FaultStore::new(MemStore::new(128)), 2);
        p.set_retry_policy(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        let (a, page) = p.allocate().unwrap();
        page.write()[0] = 42;
        drop(page);
        // Evict `a` so the next fetch must hit the store.
        p.flush_to_store_only().unwrap();
        p.invalidate_cache().unwrap();
        let attempts_before = telemetry::counter_value("pagestore.pool.retries");
        let successes_before = telemetry::counter_value("pagestore.pool.retry_successes");
        let at = p.store_lock().ops();
        p.store_lock().inject(at, Fault::IoError);
        // One-shot fault: the first attempt fails, the retry succeeds.
        let page = p.fetch(a).unwrap();
        assert_eq!(page.read()[0], 42);
        assert_eq!(
            telemetry::counter_value("pagestore.pool.retries"),
            attempts_before + 1
        );
        assert_eq!(
            telemetry::counter_value("pagestore.pool.retry_successes"),
            successes_before + 1
        );
    }

    #[test]
    fn retry_policy_gives_up_after_max_attempts() {
        use crate::fault::{Fault, FaultStore};
        let p = BufferPool::new(FaultStore::new(MemStore::new(128)), 2);
        p.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        });
        let (a, _) = p.allocate().unwrap();
        p.invalidate_cache().unwrap();
        let exhausted_before = telemetry::counter_value("pagestore.pool.retry_exhausted");
        let at = p.store_lock().ops();
        p.store_lock().inject(at, Fault::IoError);
        p.store_lock().inject(at + 1, Fault::IoError);
        assert!(p.fetch(a).is_err());
        assert_eq!(
            telemetry::counter_value("pagestore.pool.retry_exhausted"),
            exhausted_before + 1
        );
    }

    #[test]
    fn corruption_is_never_retried() {
        use crate::checksum::{ChecksumStore, TRAILER_LEN};
        let p = BufferPool::new(ChecksumStore::new(MemStore::new(128 + TRAILER_LEN)), 2);
        p.set_retry_policy(RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        });
        let (a, page) = p.allocate().unwrap();
        page.write()[0] = 1;
        drop(page);
        p.flush().unwrap();
        p.invalidate_cache().unwrap();
        // Damage the raw page below the checksum layer.
        let mut full = vec![0u8; 128 + TRAILER_LEN];
        p.store_lock().inner_mut().read(a, &mut full).unwrap();
        full[0] ^= 0xFF;
        p.store_lock().inner_mut().write(a, &full).unwrap();
        let attempts_before = telemetry::counter_value("pagestore.pool.retries");
        match p.fetch(a) {
            Err(e) => assert!(e.is_corruption()),
            Ok(_) => panic!("fetch of damaged page must fail"),
        }
        assert_eq!(
            telemetry::counter_value("pagestore.pool.retries"),
            attempts_before,
            "corruption must surface without a retry"
        );
    }

    #[test]
    fn invalidate_cache_forces_reread_and_keeps_pins() {
        let p = pool(8);
        let (a, page) = p.allocate().unwrap();
        page.write()[0] = 7;
        drop(page);
        let (b, pin_b) = p.allocate().unwrap();
        pin_b.write()[0] = 8;
        let reads_before = p.stats().physical_reads;
        p.invalidate_cache().unwrap();
        // `a` was dropped (after a writeback); fetching re-reads it.
        let page = p.fetch(a).unwrap();
        assert_eq!(page.read()[0], 7);
        assert_eq!(p.stats().physical_reads, reads_before + 1);
        // The pinned frame survived untouched.
        assert_eq!(pin_b.read()[0], 8);
        drop(pin_b);
        let page = p.fetch(b).unwrap();
        assert_eq!(page.read()[0], 8);
    }

    #[test]
    fn begin_query_sheds_oversized_touched_bitmap() {
        let p = pool(4);
        let mut ids = Vec::new();
        for _ in 0..TOUCHED_RETAIN_LIMIT + 100 {
            ids.push(p.allocate().unwrap().0);
        }
        p.begin_query();
        for &id in &ids {
            p.fetch(id).unwrap();
        }
        assert!(p.touched_len() > TOUCHED_RETAIN_LIMIT);
        assert_eq!(p.query_stats().distinct_pages, ids.len() as u64);
        p.begin_query();
        assert!(
            p.touched_capacity() <= TOUCHED_RETAIN_LIMIT,
            "begin_query must release an oversized touched bitmap"
        );
        // Accounting still works after the shed.
        p.fetch(ids[0]).unwrap();
        p.fetch(ids[0]).unwrap();
        assert_eq!(p.query_stats().distinct_pages, 1);
        assert_eq!(p.query_stats().node_visits, 2);
    }

    #[test]
    fn query_stats_are_per_thread() {
        let p = Arc::new(pool(8));
        let (a, _) = p.allocate().unwrap();
        let (b, _) = p.allocate().unwrap();
        p.begin_query();
        p.fetch(a).unwrap();
        let p2 = p.clone();
        std::thread::spawn(move || {
            // A fresh thread starts with zeroed query state and its
            // fetches must not leak into the spawner's counters.
            p2.begin_query();
            assert_eq!(p2.query_stats(), QueryStats::default());
            p2.fetch(a).unwrap();
            p2.fetch(b).unwrap();
            assert_eq!(p2.query_stats().distinct_pages, 2);
        })
        .join()
        .unwrap();
        assert_eq!(p.query_stats().distinct_pages, 1);
        assert_eq!(p.query_stats().node_visits, 1);
    }

    #[test]
    fn decode_cache_roundtrip_and_invalidation() {
        let p = pool(8);
        let (a, page) = p.allocate().unwrap();
        page.write()[0] = 5;
        let decoded: Arc<u8> = page.get_or_decode::<u8, (), _>(|b| Ok(b[0])).unwrap();
        assert_eq!(*decoded, 5);
        assert!(page.has_decoded());
        // A second fetch sees the cached value without re-decoding.
        let again = p.fetch(a).unwrap();
        let hit: Arc<u8> = again
            .get_or_decode::<u8, (), _>(|_| panic!("must not re-decode"))
            .unwrap();
        assert_eq!(*hit, 5);
        // Writing invalidates the cached decode.
        again.write()[0] = 9;
        assert!(!again.has_decoded());
        let fresh: Arc<u8> = again.get_or_decode::<u8, (), _>(|b| Ok(b[0])).unwrap();
        assert_eq!(*fresh, 9);
    }

    /// Regression for the single-threaded pool's borrow-across-call hazard
    /// (`bump` used to hold a `RefCell` borrow while eviction re-entered the
    /// frame map). Under the sharded pool the equivalent bug would be a
    /// deadlock between the shard lock and the store lock; hammering one
    /// tiny pool from several threads while evictions and write-backs race
    /// must finish and keep every page's contents intact.
    #[test]
    fn concurrent_fetch_evict_no_deadlock() {
        let p = Arc::new(pool(4));
        let mut ids = Vec::new();
        for i in 0..32u8 {
            let (id, page) = p.allocate().unwrap();
            page.write()[0] = i;
            ids.push(id);
        }
        p.flush_to_store_only().unwrap();
        let ids = Arc::new(ids);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = p.clone();
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..2000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = (x as usize) % ids.len();
                    let page = p.fetch(ids[i]).unwrap();
                    assert_eq!(page.read()[0], i as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
