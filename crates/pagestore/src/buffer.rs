use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashMap;
use std::rc::Rc;

use crate::error::{Error, Result};
use crate::page::PageId;
use crate::store::PageStore;

/// A frame holding one page's bytes in memory.
struct Frame {
    id: PageId,
    data: Vec<u8>,
    dirty: bool,
    last_use: u64,
}

/// A handle to a buffered page.
///
/// Holding a `PageRef` pins the page: it cannot be evicted while any handle
/// is alive. Access the bytes with [`PageRef::read`] / [`PageRef::write`]
/// (the latter marks the page dirty).
#[derive(Clone)]
pub struct PageRef {
    frame: Rc<RefCell<Frame>>,
}

impl PageRef {
    /// The id of the buffered page.
    pub fn id(&self) -> PageId {
        self.frame.borrow().id
    }

    /// Borrow the page bytes immutably.
    pub fn read(&self) -> Ref<'_, [u8]> {
        Ref::map(self.frame.borrow(), |f| f.data.as_slice())
    }

    /// Borrow the page bytes mutably and mark the page dirty.
    pub fn write(&self) -> RefMut<'_, [u8]> {
        let mut f = self.frame.borrow_mut();
        f.dirty = true;
        RefMut::map(f, |f| f.data.as_mut_slice())
    }

    /// Whether the page has unwritten modifications.
    pub fn is_dirty(&self) -> bool {
        self.frame.borrow().dirty
    }
}

/// Cumulative buffer-pool statistics since creation (or the last
/// [`BufferPool::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pages read from the backing store (cache misses).
    pub physical_reads: u64,
    /// Pages written back to the backing store.
    pub physical_writes: u64,
    /// All fetch calls, hits and misses alike.
    pub logical_fetches: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
}

/// Per-query access statistics, reset by [`BufferPool::begin_query`].
///
/// `distinct_pages` is the paper's metric: the number of different pages the
/// query touched, counting a page once no matter how often it is revisited —
/// the paper's retrieval algorithm explicitly "utilizes any page which is
/// already in memory".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Distinct pages touched since `begin_query`.
    pub distinct_pages: u64,
    /// Total fetch calls since `begin_query` (revisits included).
    pub node_visits: u64,
}

/// Largest `touched` bitmap (one `u64` per page id) carried across
/// queries; [`BufferPool::begin_query`] sheds anything bigger.
const TOUCHED_RETAIN_LIMIT: usize = 1 << 12;

/// Retry policy for transient read failures at fetch time.
///
/// Only [`Error::Io`] is retried: corruption ([`Error::is_corruption`])
/// means the bytes on the page are wrong and re-reading them cannot help,
/// and the remaining errors are caller mistakes. The default policy makes
/// a single attempt — retry is opt-in, because fault-injection tests rely
/// on one scheduled `IoError` producing exactly one failed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total read attempts, including the first. `1` disables retry.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on each further retry.
    /// [`std::time::Duration::ZERO`] (the default) never sleeps.
    pub backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: std::time::Duration::ZERO,
        }
    }
}

/// Registry handles, resolved once at pool construction so the hot path
/// pays one `Cell` bump per event (see DESIGN.md §9 for the catalog).
struct PoolMetrics {
    hits: telemetry::Counter,
    misses: telemetry::Counter,
    read_errors: telemetry::Counter,
    evictions: telemetry::Counter,
    writebacks: telemetry::Counter,
    allocations: telemetry::Counter,
    frees: telemetry::Counter,
    retry_attempts: telemetry::Counter,
    retry_successes: telemetry::Counter,
    retry_exhausted: telemetry::Counter,
}

impl PoolMetrics {
    fn new() -> Self {
        PoolMetrics {
            hits: telemetry::counter("pagestore.pool.hits"),
            misses: telemetry::counter("pagestore.pool.misses"),
            read_errors: telemetry::counter("pagestore.pool.read_errors"),
            evictions: telemetry::counter("pagestore.pool.evictions"),
            writebacks: telemetry::counter("pagestore.pool.writebacks"),
            allocations: telemetry::counter("pagestore.pool.allocations"),
            frees: telemetry::counter("pagestore.pool.frees"),
            retry_attempts: telemetry::counter("pagestore.retry.attempts"),
            retry_successes: telemetry::counter("pagestore.retry.successes"),
            retry_exhausted: telemetry::counter("pagestore.retry.exhausted"),
        }
    }
}

/// A single-threaded buffer pool with LRU eviction, pinning via [`PageRef`]
/// handles, and the page-access accounting the experiments report.
pub struct BufferPool<S: PageStore> {
    store: S,
    frames: HashMap<PageId, Rc<RefCell<Frame>>>,
    capacity: usize,
    clock: u64,
    stats: PoolStats,
    query: QueryStats,
    /// `touched[page] == epoch` means the page was already counted for the
    /// current query. Indexed by raw page id; grows on demand.
    touched: Vec<u64>,
    epoch: u64,
    metrics: PoolMetrics,
    retry: RetryPolicy,
}

impl<S: PageStore> BufferPool<S> {
    /// Create a pool over `store` holding at most `capacity` unpinned frames.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            store,
            frames: HashMap::new(),
            capacity,
            clock: 0,
            stats: PoolStats::default(),
            query: QueryStats::default(),
            touched: Vec::new(),
            epoch: 1,
            metrics: PoolMetrics::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// Replace the fetch-time [`RetryPolicy`] (single-attempt by default).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The current fetch-time retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The fixed page size of the backing store.
    pub fn page_size(&self) -> usize {
        self.store.page_size()
    }

    /// Number of live pages in the backing store.
    pub fn live_pages(&self) -> usize {
        self.store.live_pages()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Zero the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Start a new query: zeroes the per-query counters. Every page fetched
    /// afterwards counts once towards [`QueryStats::distinct_pages`].
    pub fn begin_query(&mut self) {
        self.epoch += 1;
        self.query = QueryStats::default();
        // `touched` grows to the highest page id a query ever visits and
        // would otherwise stay that large for the pool's lifetime. Epochs
        // make stale entries harmless, so shedding the memory is free.
        if self.touched.len() > TOUCHED_RETAIN_LIMIT {
            self.touched.clear();
            self.touched.shrink_to(TOUCHED_RETAIN_LIMIT);
        }
    }

    /// The per-query counters accumulated since the last
    /// [`BufferPool::begin_query`].
    pub fn query_stats(&self) -> QueryStats {
        self.query
    }

    fn touch_for_query(&mut self, id: PageId) {
        self.query.node_visits += 1;
        let idx = id.index();
        if idx >= self.touched.len() {
            self.touched.resize(idx + 1, 0);
        }
        if self.touched[idx] != self.epoch {
            self.touched[idx] = self.epoch;
            self.query.distinct_pages += 1;
        }
    }

    fn bump(&mut self, frame: &Rc<RefCell<Frame>>) {
        self.clock += 1;
        frame.borrow_mut().last_use = self.clock;
    }

    /// Read a page, retrying transient [`Error::Io`] failures under the
    /// configured [`RetryPolicy`]. Corruption and caller errors surface
    /// immediately — see the policy docs.
    fn read_with_retry(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let mut attempt = 1u32;
        loop {
            match self.store.read(id, buf) {
                Ok(()) => {
                    if attempt > 1 {
                        self.metrics.retry_successes.inc();
                    }
                    return Ok(());
                }
                Err(Error::Io(_)) if attempt < self.retry.max_attempts => {
                    self.metrics.retry_attempts.inc();
                    if !self.retry.backoff.is_zero() {
                        let shift = (attempt - 1).min(10);
                        std::thread::sleep(self.retry.backoff * (1u32 << shift));
                    }
                    attempt += 1;
                }
                Err(e) => {
                    if attempt > 1 {
                        self.metrics.retry_exhausted.inc();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Fetch a page, reading it from the store on a miss.
    ///
    /// A fetch whose store read fails counts towards *no* access statistic
    /// except `pagestore.pool.read_errors`: the caller never saw a page, so
    /// neither the cumulative nor the per-query counters may move.
    pub fn fetch(&mut self, id: PageId) -> Result<PageRef> {
        if id.is_null() {
            return Err(Error::InvalidPageId(id));
        }
        if let Some(frame) = self.frames.get(&id).cloned() {
            self.stats.logical_fetches += 1;
            self.touch_for_query(id);
            self.metrics.hits.inc();
            self.bump(&frame);
            return Ok(PageRef { frame });
        }
        let mut data = vec![0u8; self.store.page_size()];
        if let Err(e) = self.read_with_retry(id, &mut data) {
            self.metrics.read_errors.inc();
            return Err(e);
        }
        self.stats.logical_fetches += 1;
        self.stats.physical_reads += 1;
        self.touch_for_query(id);
        self.metrics.misses.inc();
        let frame = Rc::new(RefCell::new(Frame {
            id,
            data,
            dirty: false,
            last_use: 0,
        }));
        self.bump(&frame);
        self.insert_frame(id, frame.clone())?;
        Ok(PageRef { frame })
    }

    /// Allocate a fresh zeroed page and return a handle to it.
    pub fn allocate(&mut self) -> Result<(PageId, PageRef)> {
        let id = self.store.allocate()?;
        self.stats.allocations += 1;
        self.metrics.allocations.inc();
        self.touch_for_query(id);
        let frame = Rc::new(RefCell::new(Frame {
            id,
            data: vec![0u8; self.store.page_size()],
            dirty: true,
            last_use: 0,
        }));
        self.bump(&frame);
        self.insert_frame(id, frame.clone())?;
        Ok((id, PageRef { frame }))
    }

    /// Free a page, dropping its frame. The caller must not hold handles to
    /// it.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        if let Some(frame) = self.frames.remove(&id) {
            if Rc::strong_count(&frame) > 1 {
                // Put it back before failing so state stays consistent.
                self.frames.insert(id, frame);
                return Err(Error::Corrupt(format!("freeing pinned page {id}")));
            }
        }
        // Count the free only once the store accepts it, so a failed free
        // (e.g. an unallocated id or an I/O error) leaves stats truthful.
        self.store.free(id)?;
        self.stats.frees += 1;
        self.metrics.frees.inc();
        Ok(())
    }

    /// Write all dirty frames back to the store and sync it.
    pub fn flush(&mut self) -> Result<()> {
        self.flush_to_store_only()?;
        self.store.sync()
    }

    /// Write all dirty frames back to the store *without* syncing it
    /// (lets a [`crate::WalStore`] caller choose commit vs checkpoint).
    pub fn flush_to_store_only(&mut self) -> Result<()> {
        for (id, frame) in &self.frames {
            let mut f = frame.borrow_mut();
            if f.dirty {
                self.store.write(*id, &f.data)?;
                f.dirty = false;
                self.stats.physical_writes += 1;
                self.metrics.writebacks.inc();
            }
        }
        Ok(())
    }

    /// Drop every unpinned frame, writing dirty ones back first. Later
    /// fetches must re-read from the backing store, which forces a
    /// checksum layer underneath to re-verify pages a large cache would
    /// otherwise keep serving from memory. Pinned frames survive.
    pub fn invalidate_cache(&mut self) -> Result<()> {
        let victims: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| Rc::strong_count(f) == 1)
            .map(|(id, _)| *id)
            .collect();
        for id in victims {
            let frame = self.frames.remove(&id).expect("victim exists");
            let f = frame.borrow();
            if f.dirty {
                self.store.write(id, &f.data)?;
                self.stats.physical_writes += 1;
                self.metrics.writebacks.inc();
            }
        }
        Ok(())
    }

    /// Consume the pool, returning the backing store. Dirty frames are NOT
    /// written back — call [`BufferPool::flush`] or
    /// [`BufferPool::flush_to_store_only`] first.
    pub fn into_store(self) -> S {
        self.store
    }

    fn insert_frame(&mut self, id: PageId, frame: Rc<RefCell<Frame>>) -> Result<()> {
        while self.frames.len() >= self.capacity {
            if !self.evict_one()? {
                break; // everything is pinned; allow temporary overflow
            }
        }
        self.frames.insert(id, frame);
        Ok(())
    }

    fn evict_one(&mut self) -> Result<bool> {
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| Rc::strong_count(f) == 1)
            .min_by_key(|(_, f)| f.borrow().last_use)
            .map(|(id, _)| *id);
        let Some(id) = victim else {
            return Ok(false);
        };
        let frame = self.frames.remove(&id).expect("victim exists");
        let f = frame.borrow();
        if f.dirty {
            self.store.write(id, &f.data)?;
            self.stats.physical_writes += 1;
            self.metrics.writebacks.inc();
        }
        self.metrics.evictions.inc();
        Ok(true)
    }

    /// Direct access to the backing store (e.g. to inspect `live_pages`).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the backing store — e.g. to call
    /// [`crate::WalStore::commit`] on a WAL-backed pool after
    /// [`BufferPool::flush_to_store_only`]. Mutating page contents through
    /// this handle bypasses the cache; prefer the pool's own methods.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(cap: usize) -> BufferPool<MemStore> {
        BufferPool::new(MemStore::new(128), cap)
    }

    #[test]
    fn fetch_counts_distinct_once() {
        let mut p = pool(8);
        let (a, _) = p.allocate().unwrap();
        let (b, _) = p.allocate().unwrap();
        p.begin_query();
        p.fetch(a).unwrap();
        p.fetch(a).unwrap();
        p.fetch(b).unwrap();
        p.fetch(a).unwrap();
        let qs = p.query_stats();
        assert_eq!(qs.distinct_pages, 2);
        assert_eq!(qs.node_visits, 4);
    }

    #[test]
    fn begin_query_resets() {
        let mut p = pool(8);
        let (a, _) = p.allocate().unwrap();
        p.begin_query();
        p.fetch(a).unwrap();
        assert_eq!(p.query_stats().distinct_pages, 1);
        p.begin_query();
        assert_eq!(p.query_stats().distinct_pages, 0);
        p.fetch(a).unwrap();
        assert_eq!(p.query_stats().distinct_pages, 1);
    }

    #[test]
    fn eviction_and_reload() {
        let mut p = pool(2);
        let mut ids = Vec::new();
        for i in 0..4u8 {
            let (id, page) = p.allocate().unwrap();
            page.write()[0] = i;
            ids.push(id);
        }
        // All pages were unpinned after each allocation; two must have been
        // evicted (written back since dirty). Fetch them again and check.
        for (i, id) in ids.iter().enumerate() {
            let page = p.fetch(*id).unwrap();
            assert_eq!(page.read()[0], i as u8);
        }
        assert!(p.stats().physical_writes >= 2);
        assert!(p.stats().physical_reads >= 2);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let mut p = pool(2);
        let (a, pin_a) = p.allocate().unwrap();
        pin_a.write()[0] = 77;
        // Allocate many more pages than capacity while `a` stays pinned.
        for _ in 0..8 {
            let _ = p.allocate().unwrap();
        }
        assert_eq!(pin_a.read()[0], 77);
        drop(pin_a);
        let again = p.fetch(a).unwrap();
        assert_eq!(again.read()[0], 77);
    }

    #[test]
    fn free_pinned_fails() {
        let mut p = pool(4);
        let (a, pin) = p.allocate().unwrap();
        assert!(p.free(a).is_err());
        drop(pin);
        p.free(a).unwrap();
        assert!(p.fetch(a).is_err());
    }

    #[test]
    fn flush_persists_dirty_pages() {
        let mut p = pool(4);
        let (a, page) = p.allocate().unwrap();
        page.write()[5] = 99;
        drop(page);
        p.flush().unwrap();
        assert!(p.stats().physical_writes >= 1);
        let page = p.fetch(a).unwrap();
        assert_eq!(page.read()[5], 99);
    }

    #[test]
    fn fetch_null_fails() {
        let mut p = pool(4);
        assert!(p.fetch(PageId::NULL).is_err());
    }

    #[test]
    fn failed_free_does_not_count() {
        let mut p = pool(4);
        let (a, _) = p.allocate().unwrap();
        p.free(a).unwrap();
        assert_eq!(p.stats().frees, 1);
        // Freeing the same page again fails in the store — the counter
        // must not move (it used to be incremented before the store call).
        assert!(p.free(a).is_err());
        assert_eq!(p.stats().frees, 1);
        assert!(p.free(PageId(999)).is_err());
        assert_eq!(p.stats().frees, 1);
    }

    #[test]
    fn faulted_fetch_is_not_counted_as_access() {
        use crate::fault::{Fault, FaultStore};
        let mut p = BufferPool::new(FaultStore::new(MemStore::new(128)), 2);
        let (a, _) = p.allocate().unwrap();
        // Push `a` out of the pool so the next fetch must hit the store.
        let (_b, _) = p.allocate().unwrap();
        let (_c, _) = p.allocate().unwrap();
        p.begin_query();
        let before = p.stats();
        let hits_before = telemetry::counter_value("pagestore.pool.hits");
        let misses_before = telemetry::counter_value("pagestore.pool.misses");
        let errors_before = telemetry::counter_value("pagestore.pool.read_errors");
        let at = p.store().ops();
        p.store_mut().inject(at, Fault::IoError);
        assert!(p.fetch(a).is_err());
        let after = p.stats();
        // The failed fetch reached no page: every access statistic must be
        // unchanged, cumulative and per-query alike.
        assert_eq!(after.logical_fetches, before.logical_fetches);
        assert_eq!(after.physical_reads, before.physical_reads);
        assert_eq!(p.query_stats(), QueryStats::default());
        assert_eq!(telemetry::counter_value("pagestore.pool.hits"), hits_before);
        assert_eq!(
            telemetry::counter_value("pagestore.pool.misses"),
            misses_before
        );
        assert_eq!(
            telemetry::counter_value("pagestore.pool.read_errors"),
            errors_before + 1
        );
        // The page itself is fine; a retry succeeds and counts normally.
        p.fetch(a).unwrap();
        assert_eq!(p.stats().logical_fetches, before.logical_fetches + 1);
        assert_eq!(p.query_stats().node_visits, 1);
    }

    #[test]
    fn stats_stay_monotonic_across_crash_and_recovery() {
        use crate::fault::{Fault, FaultStore};
        let mut p = BufferPool::new(FaultStore::new(MemStore::new(128)), 2);
        let mut ids = Vec::new();
        for i in 0..4u8 {
            let (id, page) = p.allocate().unwrap();
            page.write()[0] = i;
            ids.push(id);
        }
        let pre_crash = p.stats();
        let at = p.store().ops();
        p.store_mut().inject(at, Fault::Crash);
        // Everything fails while crashed; counters must not move backwards
        // (or at all — no page access completes).
        assert!(p.fetch(ids[0]).is_err() || p.fetch(ids[1]).is_err());
        let crashed = p.stats();
        assert!(crashed.logical_fetches >= pre_crash.logical_fetches);
        assert_eq!(crashed.physical_reads, pre_crash.physical_reads);
        // "Repair the disk" and recover: counters resume from where they
        // were, still monotonic.
        p.store_mut().clear_faults();
        for (i, id) in ids.iter().enumerate() {
            let page = p.fetch(*id).unwrap();
            assert_eq!(page.read()[0], i as u8);
        }
        let recovered = p.stats();
        assert!(recovered.logical_fetches > crashed.logical_fetches);
        assert!(recovered.physical_reads >= crashed.physical_reads);
        assert!(recovered.physical_writes >= crashed.physical_writes);
    }

    #[test]
    fn retry_policy_recovers_transient_io_error() {
        use crate::fault::{Fault, FaultStore};
        let mut p = BufferPool::new(FaultStore::new(MemStore::new(128)), 2);
        p.set_retry_policy(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        let (a, page) = p.allocate().unwrap();
        page.write()[0] = 42;
        drop(page);
        // Evict `a` so the next fetch must hit the store.
        let _ = p.allocate().unwrap();
        let _ = p.allocate().unwrap();
        let attempts_before = telemetry::counter_value("pagestore.retry.attempts");
        let successes_before = telemetry::counter_value("pagestore.retry.successes");
        let at = p.store().ops();
        p.store_mut().inject(at, Fault::IoError);
        // One-shot fault: the first attempt fails, the retry succeeds.
        let page = p.fetch(a).unwrap();
        assert_eq!(page.read()[0], 42);
        assert_eq!(
            telemetry::counter_value("pagestore.retry.attempts"),
            attempts_before + 1
        );
        assert_eq!(
            telemetry::counter_value("pagestore.retry.successes"),
            successes_before + 1
        );
    }

    #[test]
    fn retry_policy_gives_up_after_max_attempts() {
        use crate::fault::{Fault, FaultStore};
        let mut p = BufferPool::new(FaultStore::new(MemStore::new(128)), 2);
        p.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        });
        let (a, _) = p.allocate().unwrap();
        let _ = p.allocate().unwrap();
        let _ = p.allocate().unwrap();
        let exhausted_before = telemetry::counter_value("pagestore.retry.exhausted");
        let at = p.store().ops();
        p.store_mut().inject(at, Fault::IoError);
        p.store_mut().inject(at + 1, Fault::IoError);
        assert!(p.fetch(a).is_err());
        assert_eq!(
            telemetry::counter_value("pagestore.retry.exhausted"),
            exhausted_before + 1
        );
    }

    #[test]
    fn corruption_is_never_retried() {
        use crate::checksum::{ChecksumStore, TRAILER_LEN};
        let mut p = BufferPool::new(ChecksumStore::new(MemStore::new(128 + TRAILER_LEN)), 2);
        p.set_retry_policy(RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        });
        let (a, page) = p.allocate().unwrap();
        page.write()[0] = 1;
        drop(page);
        p.flush().unwrap();
        p.invalidate_cache().unwrap();
        // Damage the raw page below the checksum layer.
        let mut full = vec![0u8; 128 + TRAILER_LEN];
        p.store_mut().inner_mut().read(a, &mut full).unwrap();
        full[0] ^= 0xFF;
        p.store_mut().inner_mut().write(a, &full).unwrap();
        let attempts_before = telemetry::counter_value("pagestore.retry.attempts");
        match p.fetch(a) {
            Err(e) => assert!(e.is_corruption()),
            Ok(_) => panic!("fetch of damaged page must fail"),
        }
        assert_eq!(
            telemetry::counter_value("pagestore.retry.attempts"),
            attempts_before,
            "corruption must surface without a retry"
        );
    }

    #[test]
    fn invalidate_cache_forces_reread_and_keeps_pins() {
        let mut p = pool(8);
        let (a, page) = p.allocate().unwrap();
        page.write()[0] = 7;
        drop(page);
        let (b, pin_b) = p.allocate().unwrap();
        pin_b.write()[0] = 8;
        let reads_before = p.stats().physical_reads;
        p.invalidate_cache().unwrap();
        // `a` was dropped (after a writeback); fetching re-reads it.
        let page = p.fetch(a).unwrap();
        assert_eq!(page.read()[0], 7);
        assert_eq!(p.stats().physical_reads, reads_before + 1);
        // The pinned frame survived untouched.
        assert_eq!(pin_b.read()[0], 8);
        drop(pin_b);
        let page = p.fetch(b).unwrap();
        assert_eq!(page.read()[0], 8);
    }

    #[test]
    fn begin_query_sheds_oversized_touched_bitmap() {
        let mut p = pool(4);
        let mut ids = Vec::new();
        for _ in 0..TOUCHED_RETAIN_LIMIT + 100 {
            ids.push(p.allocate().unwrap().0);
        }
        p.begin_query();
        for &id in &ids {
            p.fetch(id).unwrap();
        }
        assert!(p.touched.len() > TOUCHED_RETAIN_LIMIT);
        assert_eq!(p.query_stats().distinct_pages, ids.len() as u64);
        p.begin_query();
        assert!(
            p.touched.capacity() <= TOUCHED_RETAIN_LIMIT,
            "begin_query must release an oversized touched bitmap"
        );
        // Accounting still works after the shed.
        p.fetch(ids[0]).unwrap();
        p.fetch(ids[0]).unwrap();
        assert_eq!(p.query_stats().distinct_pages, 1);
        assert_eq!(p.query_stats().node_visits, 2);
    }
}
