use std::fmt;

/// Default page size used by the paper's second experiment (1024 bytes).
pub const PAGE_SIZE_DEFAULT: usize = 1024;

/// Smallest page size the stores accept. Small pages are useful in tests to
/// force deep trees with few records.
pub const PAGE_SIZE_MIN: usize = 64;

/// Identifier of a page within a store. Page ids are dense (allocation
/// reuses freed ids) and 4 bytes wide, matching the paper's 4-byte page
/// references.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel for "no page" (e.g. the next-leaf pointer of the last leaf).
    pub const NULL: PageId = PageId(u32::MAX);

    /// Whether this id is the [`PageId::NULL`] sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Serialize into 4 little-endian bytes.
    #[inline]
    pub fn to_bytes(self) -> [u8; 4] {
        self.0.to_le_bytes()
    }

    /// Deserialize from 4 little-endian bytes.
    #[inline]
    pub fn from_bytes(b: [u8; 4]) -> Self {
        PageId(u32::from_le_bytes(b))
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PageId(NULL)")
        } else {
            write!(f, "PageId({})", self.0)
        }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sentinel() {
        assert!(PageId::NULL.is_null());
        assert!(!PageId(0).is_null());
        assert!(!PageId(123).is_null());
    }

    #[test]
    fn byte_roundtrip() {
        for raw in [0u32, 1, 7, 0xDEAD_BEEF, u32::MAX - 1] {
            let id = PageId(raw);
            assert_eq!(PageId::from_bytes(id.to_bytes()), id);
        }
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", PageId(5)), "PageId(5)");
        assert_eq!(format!("{:?}", PageId::NULL), "PageId(NULL)");
    }
}
