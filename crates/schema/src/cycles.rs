//! REF-cycle handling (paper §4.3).
//!
//! REF relationships can create cycles in the contracted schema graph (e.g.
//! `Employee OWN Vehicle` and `Vehicle USED-BY Employee`). No single
//! code assignment can satisfy both orderings, so the paper's fix is to
//! *duplicate* the encoding: partition the REF edges into groups whose
//! contracted graphs are each acyclic and encode each group separately.
//! Because every path index names its reference attributes explicitly, a
//! query maps unambiguously to the right encoding.

use std::collections::{HashMap, HashSet};

use crate::model::{AttrId, ClassId, RefEdge, Schema};

/// Whether the contracted REF graph (hierarchy roots as nodes) is cyclic.
pub fn has_ref_cycle(schema: &Schema) -> bool {
    !find_cycle_edges(schema, &HashSet::new()).is_empty()
}

/// The REF edges participating in cycles of the contracted graph, ignoring
/// the given `(source, attr)` edges. Empty when acyclic.
pub fn find_cycle_edges(schema: &Schema, ignored: &HashSet<(ClassId, AttrId)>) -> Vec<RefEdge> {
    let edges: Vec<RefEdge> = schema
        .ref_edges()
        .into_iter()
        .filter(|e| !ignored.contains(&(e.source, e.attr)))
        .collect();
    cyclic_subset(schema, &edges)
}

/// Partition all REF edges into groups whose contracted graphs are each
/// acyclic. Greedy first-fit: most schemas yield a single group; a schema
/// with an OWN/USE-style cycle yields two.
pub fn partition_acyclic(schema: &Schema) -> Vec<Vec<RefEdge>> {
    let mut groups: Vec<Vec<RefEdge>> = Vec::new();
    for e in schema.ref_edges() {
        let mut placed = false;
        for g in &mut groups {
            g.push(e);
            if cyclic_subset(schema, g).is_empty() {
                placed = true;
                break;
            }
            g.pop();
        }
        if !placed {
            groups.push(vec![e]);
        }
    }
    groups
}

/// For each group from [`partition_acyclic`], the complementary ignore-set
/// to pass to [`crate::Encoding::generate_ignoring`].
pub fn ignore_sets(schema: &Schema, groups: &[Vec<RefEdge>]) -> Vec<HashSet<(ClassId, AttrId)>> {
    let all: HashSet<(ClassId, AttrId)> = schema
        .ref_edges()
        .into_iter()
        .map(|e| (e.source, e.attr))
        .collect();
    groups
        .iter()
        .map(|g| {
            let keep: HashSet<(ClassId, AttrId)> = g.iter().map(|e| (e.source, e.attr)).collect();
            all.difference(&keep).copied().collect()
        })
        .collect()
}

/// The subset of `edges` lying on cycles of the contracted graph.
fn cyclic_subset(schema: &Schema, edges: &[RefEdge]) -> Vec<RefEdge> {
    // Contract to hierarchy roots and repeatedly strip nodes with zero
    // in-degree or zero out-degree; whatever survives lies on a cycle.
    let mut adj: HashMap<ClassId, HashSet<ClassId>> = HashMap::new();
    let mut radj: HashMap<ClassId, HashSet<ClassId>> = HashMap::new();
    let mut nodes: HashSet<ClassId> = HashSet::new();
    for e in edges {
        let s = schema.hierarchy_root(e.source);
        let t = schema.hierarchy_root(e.target);
        if s == t {
            continue;
        }
        adj.entry(s).or_default().insert(t);
        radj.entry(t).or_default().insert(s);
        nodes.insert(s);
        nodes.insert(t);
    }
    loop {
        let removable: Vec<ClassId> = nodes
            .iter()
            .filter(|n| {
                adj.get(n).is_none_or(|s| s.is_empty()) || radj.get(n).is_none_or(|s| s.is_empty())
            })
            .copied()
            .collect();
        if removable.is_empty() {
            break;
        }
        for n in removable {
            nodes.remove(&n);
            if let Some(outs) = adj.remove(&n) {
                for o in outs {
                    if let Some(r) = radj.get_mut(&o) {
                        r.remove(&n);
                    }
                }
            }
            if let Some(ins) = radj.remove(&n) {
                for i in ins {
                    if let Some(a) = adj.get_mut(&i) {
                        a.remove(&n);
                    }
                }
            }
        }
    }
    edges
        .iter()
        .filter(|e| {
            let s = schema.hierarchy_root(e.source);
            let t = schema.hierarchy_root(e.target);
            s != t && nodes.contains(&s) && nodes.contains(&t)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoding;
    use crate::model::AttrType;

    fn own_use_schema() -> (Schema, ClassId, ClassId) {
        let mut s = Schema::new();
        let emp = s.add_class("Employee").unwrap();
        let veh = s.add_class("Vehicle").unwrap();
        s.add_attr(emp, "Own", AttrType::RefSet(veh)).unwrap();
        s.add_attr(veh, "UsedBy", AttrType::RefSet(emp)).unwrap();
        (s, emp, veh)
    }

    #[test]
    fn acyclic_schema_single_group() {
        let mut s = Schema::new();
        let a = s.add_class("A").unwrap();
        let b = s.add_class("B").unwrap();
        let c = s.add_class("C").unwrap();
        s.add_attr(b, "ToA", AttrType::Ref(a)).unwrap();
        s.add_attr(c, "ToB", AttrType::Ref(b)).unwrap();
        s.add_attr(c, "ToA", AttrType::Ref(a)).unwrap();
        assert!(!has_ref_cycle(&s));
        let groups = partition_acyclic(&s);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn own_use_cycle_splits_into_two() {
        let (s, ..) = own_use_schema();
        assert!(has_ref_cycle(&s));
        let groups = partition_acyclic(&s);
        assert_eq!(groups.len(), 2);
        // Each group encodable on its own.
        let ignores = ignore_sets(&s, &groups);
        for ig in &ignores {
            let enc = Encoding::generate_ignoring(&s, ig).unwrap();
            enc.verify(&s, ig).unwrap();
        }
    }

    #[test]
    fn cycle_edges_reported() {
        let (s, emp, veh) = own_use_schema();
        let edges = find_cycle_edges(&s, &HashSet::new());
        assert_eq!(edges.len(), 2);
        let ignored: HashSet<(ClassId, AttrId)> = [(emp, AttrId(0))].into_iter().collect();
        assert!(find_cycle_edges(&s, &ignored).is_empty());
        let ignored2: HashSet<(ClassId, AttrId)> = [(veh, AttrId(0))].into_iter().collect();
        assert!(find_cycle_edges(&s, &ignored2).is_empty());
    }

    #[test]
    fn intra_hierarchy_reference_not_a_cycle() {
        let mut s = Schema::new();
        let person = s.add_class("Person").unwrap();
        let manager = s.add_subclass("Manager", person).unwrap();
        // Person references its own hierarchy: contracted self-loop, ignored.
        s.add_attr(person, "Boss", AttrType::Ref(manager)).unwrap();
        assert!(!has_ref_cycle(&s));
        Encoding::generate(&s).unwrap();
    }

    #[test]
    fn three_cycle() {
        let mut s = Schema::new();
        let a = s.add_class("A").unwrap();
        let b = s.add_class("B").unwrap();
        let c = s.add_class("C").unwrap();
        s.add_attr(a, "ToB", AttrType::Ref(b)).unwrap();
        s.add_attr(b, "ToC", AttrType::Ref(c)).unwrap();
        s.add_attr(c, "ToA", AttrType::Ref(a)).unwrap();
        assert!(has_ref_cycle(&s));
        let groups = partition_acyclic(&s);
        assert_eq!(groups.len(), 2, "dropping one edge breaks a 3-cycle");
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 1);
    }
}
