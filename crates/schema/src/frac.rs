//! Fractional indexing over the component alphabet `'A'..='Z'`.
//!
//! Components behave like base-26 fractions (`'A'` = digit 0). Between any
//! two existing components a new one can always be generated, which is what
//! makes the paper's schema evolution (Fig. 4) work without renaming: a new
//! sibling class slots in between its neighbours' components.
//!
//! Invariant maintained by every generator here: **no component ends with
//! `'A'`** (digit 0). A component ending in the minimum digit would have
//! nothing strictly smaller in its extension region, making a later
//! "insert before" impossible.

/// Smallest component byte.
pub const MIN: u8 = b'A';
/// Largest component byte.
pub const MAX: u8 = b'Z';
const BASE: u32 = (MAX - MIN + 1) as u32; // 26

fn digit(c: u8) -> u32 {
    debug_assert!((MIN..=MAX).contains(&c), "byte {c} outside alphabet");
    (c - MIN) as u32
}

fn chr(d: u32) -> u8 {
    debug_assert!(d < BASE);
    MIN + d as u8
}

/// Whether `s` is a valid component: non-empty, alphabet bytes only, not
/// ending in the minimum digit.
pub fn is_valid(s: &[u8]) -> bool {
    !s.is_empty() && s.iter().all(|c| (MIN..=MAX).contains(c)) && *s.last().unwrap() != MIN
}

/// Generate a component strictly between `a` and `b`.
///
/// `None` for `a` means "before everything" and for `b` "after everything".
/// When both bounds are given they must satisfy `a < b`.
///
/// # Panics
/// Panics if the bounds are invalid components or out of order.
pub fn between(a: Option<&[u8]>, b: Option<&[u8]>) -> Vec<u8> {
    if let Some(a) = a {
        assert!(is_valid(a), "invalid lower bound {a:?}");
    }
    if let Some(b) = b {
        assert!(is_valid(b), "invalid upper bound {b:?}");
    }
    if let (Some(a), Some(b)) = (a, b) {
        assert!(a < b, "bounds out of order: {a:?} >= {b:?}");
    }
    let out = midpoint(a.unwrap_or(&[]), b);
    debug_assert!(is_valid(&out));
    if let Some(a) = a {
        debug_assert!(a < out.as_slice());
    }
    if let Some(b) = b {
        debug_assert!(out.as_slice() < b);
    }
    out
}

/// Midpoint of the open interval `(a, b)` where `a` may be empty ("zero")
/// and `b == None` means "one" (exclusive upper limit of the fraction
/// space). Mirrors the classic fractional-indexing algorithm.
fn midpoint(a: &[u8], b: Option<&[u8]>) -> Vec<u8> {
    if let Some(b) = b {
        // Shared prefix (treating a as zero-padded) is copied verbatim.
        let mut n = 0;
        while n < b.len() && a.get(n).copied().unwrap_or(MIN) == b[n] {
            n += 1;
        }
        if n > 0 {
            let mut out = b[..n].to_vec();
            out.extend(midpoint(&a[n.min(a.len())..], strip(b, n)));
            return out;
        }
    }
    // First digits now differ (or bounds are open).
    let da = a.first().map_or(0, |&c| digit(c));
    let db = b.map_or(BASE, |b| digit(b[0]));
    if db - da > 1 {
        // A single digit strictly between the two first digits.
        return vec![chr((da + db) / 2)];
    }
    // Adjacent first digits: consume `a`'s first digit and recurse with an
    // open upper bound in the consumed digit's extension region.
    if a.len() > 1 {
        let mut out = vec![a[0]];
        out.extend(midpoint(&a[1..], None));
        out
    } else {
        let mut out = vec![chr(da)];
        out.extend(midpoint(&[], b.and_then(|b| strip(b, 1))));
        out
    }
}

/// `b[n..]` as an upper bound, treating an empty tail as "open".
fn strip(b: &[u8], n: usize) -> Option<&[u8]> {
    let tail = &b[n.min(b.len())..];
    if tail.is_empty() {
        None
    } else {
        Some(tail)
    }
}

/// The first component handed out when nothing exists yet (`'N'`, the middle
/// of the alphabet, leaving room on both sides).
pub fn first() -> Vec<u8> {
    between(None, None)
}

/// Generate `n` components in ascending order, spread by repeated
/// "append after" generation.
pub fn sequence(n: usize) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(n);
    for _ in 0..n {
        let next = between(out.last().map(|v| v.as_slice()), None);
        out.push(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_is_middle() {
        assert_eq!(first(), b"N".to_vec());
    }

    #[test]
    fn between_simple() {
        assert_eq!(between(Some(b"B"), Some(b"D")), b"C".to_vec());
        let x = between(Some(b"B"), Some(b"C"));
        assert!(b"B".as_slice() < x.as_slice() && x.as_slice() < b"C".as_slice());
    }

    #[test]
    fn before_and_after_everything() {
        let x = between(None, Some(b"B"));
        assert!(x.as_slice() < b"B".as_slice());
        let y = between(Some(b"Y"), None);
        assert!(y.as_slice() > b"Y".as_slice());
    }

    #[test]
    fn never_ends_with_min() {
        // Repeated insertion at the front must not create 'A'-terminated
        // components.
        let mut hi = b"B".to_vec();
        for _ in 0..50 {
            let lo = between(None, Some(&hi));
            assert!(is_valid(&lo), "invalid {lo:?}");
            assert!(lo < hi);
            hi = lo;
        }
    }

    #[test]
    fn repeated_append() {
        let seq = sequence(100);
        for w in seq.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(seq.iter().all(|c| is_valid(c)));
    }

    #[test]
    fn repeated_bisection() {
        // Keep splitting the same interval; components stay valid & ordered.
        let mut lo = b"B".to_vec();
        let hi = b"C".to_vec();
        for _ in 0..60 {
            let mid = between(Some(&lo), Some(&hi));
            assert!(lo < mid && mid < hi, "{lo:?} < {mid:?} < {hi:?}");
            lo = mid;
        }
        let mut hi2 = b"C".to_vec();
        let lo2 = b"B".to_vec();
        for _ in 0..60 {
            let mid = between(Some(&lo2), Some(&hi2));
            assert!(lo2 < mid && mid < hi2);
            hi2 = mid;
        }
    }

    #[test]
    fn validity_predicate() {
        assert!(is_valid(b"B"));
        assert!(is_valid(b"ZZ"));
        assert!(is_valid(b"AB"));
        assert!(!is_valid(b""));
        assert!(!is_valid(b"A"));
        assert!(!is_valid(b"BA"));
        assert!(!is_valid(b"b"));
        assert!(!is_valid(&[0x00]));
    }

    #[test]
    #[should_panic]
    fn out_of_order_bounds_panic() {
        let _ = between(Some(b"D"), Some(b"B"));
    }
}
