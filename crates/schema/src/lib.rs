//! OODB schema model and the U-index class-code encoding.
//!
//! The paper's central device (§3) is a relation `COD` mapping class names to
//! codes such that:
//!
//! 1. the lexicographic order of the codes is a topological sort of the
//!    schema graph — in particular, for every REF (reference) relationship
//!    the *target* class (the "one" side) sorts before the *source*; and
//! 2. a class hierarchy is a *prefix-closed* code region: every descendant's
//!    code extends its ancestor's, so a pre-order walk of any sub-tree is a
//!    contiguous lexicographic range.
//!
//! This crate provides:
//!
//! * [`Schema`] — classes, attributes, SUP (is-a) and REF (reference) edges,
//!   with validation;
//! * [`ClassCode`] — a code as a sequence of components, each terminated by
//!   a byte below the component alphabet, giving the prefix property and
//!   sibling-region disjointness;
//! * [`Encoding`] — code assignment for a whole schema, plus *schema
//!   evolution* (the paper's Fig. 4): new classes and new hierarchies can be
//!   inserted between existing codes without renaming anything, via
//!   fractional indexing ([`frac`]);
//! * [`cycles`] — REF-cycle detection and the paper's §4.3 cycle-breaking
//!   (partitioning the REF edges into acyclic groups, each encodable
//!   separately).
//!
//! # Example
//!
//! ```
//! use schema::{Schema, Encoding, AttrType};
//!
//! let mut s = Schema::new();
//! let employee = s.add_class("Employee").unwrap();
//! s.add_attr(employee, "Age", AttrType::Int).unwrap();
//! let company = s.add_class("Company").unwrap();
//! s.add_attr(company, "President", AttrType::Ref(employee)).unwrap();
//! let vehicle = s.add_class("Vehicle").unwrap();
//! s.add_attr(vehicle, "ManufacturedBy", AttrType::Ref(company)).unwrap();
//! let auto = s.add_subclass("Automobile", vehicle).unwrap();
//!
//! let enc = Encoding::generate(&s).unwrap();
//! // REF targets sort before sources: Employee < Company < Vehicle.
//! assert!(enc.code(employee).unwrap().as_bytes() < enc.code(company).unwrap().as_bytes());
//! assert!(enc.code(company).unwrap().as_bytes() < enc.code(vehicle).unwrap().as_bytes());
//! // Sub-classes extend their parent's code.
//! assert!(enc.code(auto).unwrap().has_prefix(enc.code(vehicle).unwrap()));
//! ```

mod code;
pub mod cycles;
mod encode;
mod error;
pub mod frac;
mod model;

pub use code::ClassCode;
pub use encode::Encoding;
pub use error::{Error, Result};
pub use model::{AttrId, AttrType, ClassId, RefEdge, Schema};
