//! Classes, attributes, and the SUP/REF schema graph.

use std::collections::HashMap;

use crate::error::{Error, Result};

/// Identifier of a class within a [`Schema`] (dense, insertion-ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

/// Identifier of an attribute within its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

/// Attribute types. `Ref` is a single-valued reference — the m:1 REF
/// relationship of the paper — and `RefSet` a multi-valued reference
/// (the paper's §4.3 multi-value attribute case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// 64-bit integer.
    Int,
    /// UTF-8 string.
    Str,
    /// 64-bit float (total-order encoded in indexes).
    Float,
    /// Boolean.
    Bool,
    /// Single-valued reference to another class: `source REF target`.
    Ref(ClassId),
    /// Multi-valued reference to another class.
    RefSet(ClassId),
}

impl AttrType {
    /// The referenced class, for `Ref`/`RefSet`.
    pub fn ref_target(&self) -> Option<ClassId> {
        match self {
            AttrType::Ref(c) | AttrType::RefSet(c) => Some(*c),
            _ => None,
        }
    }
}

/// A REF relationship in the schema graph: `source` holds a reference
/// attribute (`attr`) whose values are objects of `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefEdge {
    /// The referencing ("many") class.
    pub source: ClassId,
    /// The reference attribute on `source`.
    pub attr: AttrId,
    /// The referenced ("one") class.
    pub target: ClassId,
    /// Whether the attribute is multi-valued.
    pub multi: bool,
}

#[derive(Debug, Clone)]
struct AttrData {
    name: String,
    ty: AttrType,
}

#[derive(Debug, Clone)]
struct ClassData {
    name: String,
    parents: Vec<ClassId>,
    children: Vec<ClassId>,
    attrs: Vec<AttrData>,
}

/// An OODB schema: a set of classes with attributes, connected by SUP
/// (is-a) and REF (reference) relationships.
///
/// SUP edges form a DAG (multiple inheritance allowed, cycles rejected).
/// REF edges are induced by `Ref`/`RefSet` attributes.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: Vec<ClassData>,
    by_name: HashMap<String, ClassId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// All class ids in insertion order.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len() as u32).map(ClassId)
    }

    fn data(&self, id: ClassId) -> Result<&ClassData> {
        self.classes
            .get(id.0 as usize)
            .ok_or(Error::UnknownClass(id))
    }

    /// Add a top-level class (a new hierarchy root).
    pub fn add_class(&mut self, name: &str) -> Result<ClassId> {
        if self.by_name.contains_key(name) {
            return Err(Error::DuplicateClass(name.to_string()));
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassData {
            name: name.to_string(),
            parents: Vec::new(),
            children: Vec::new(),
            attrs: Vec::new(),
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Add a class as a sub-class of `parent`.
    pub fn add_subclass(&mut self, name: &str, parent: ClassId) -> Result<ClassId> {
        self.data(parent)?;
        let id = self.add_class(name)?;
        self.classes[id.0 as usize].parents.push(parent);
        self.classes[parent.0 as usize].children.push(id);
        Ok(id)
    }

    /// Add an additional parent (multiple inheritance). Rejects is-a cycles.
    pub fn add_parent(&mut self, class: ClassId, parent: ClassId) -> Result<()> {
        self.data(class)?;
        self.data(parent)?;
        if class == parent || self.is_subclass_of(parent, class) {
            return Err(Error::HierarchyCycle(class));
        }
        if !self.classes[class.0 as usize].parents.contains(&parent) {
            self.classes[class.0 as usize].parents.push(parent);
            self.classes[parent.0 as usize].children.push(class);
        }
        Ok(())
    }

    /// Declare an attribute on `class`. `Ref`/`RefSet` types create REF
    /// edges in the schema graph.
    pub fn add_attr(&mut self, class: ClassId, name: &str, ty: AttrType) -> Result<AttrId> {
        if let Some(target) = ty.ref_target() {
            self.data(target)?;
        }
        let data = self.data(class)?;
        if data.attrs.iter().any(|a| a.name == name) {
            return Err(Error::DuplicateAttr(name.to_string()));
        }
        let id = AttrId(data.attrs.len() as u32);
        self.classes[class.0 as usize].attrs.push(AttrData {
            name: name.to_string(),
            ty,
        });
        Ok(id)
    }

    /// Class name.
    pub fn class_name(&self, id: ClassId) -> &str {
        &self.classes[id.0 as usize].name
    }

    /// Look up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Direct parents (empty for hierarchy roots).
    pub fn parents(&self, id: ClassId) -> &[ClassId] {
        &self.classes[id.0 as usize].parents
    }

    /// Direct children in insertion order.
    pub fn children(&self, id: ClassId) -> &[ClassId] {
        &self.classes[id.0 as usize].children
    }

    /// Attribute name.
    pub fn attr_name(&self, class: ClassId, attr: AttrId) -> &str {
        &self.classes[class.0 as usize].attrs[attr.0 as usize].name
    }

    /// Attribute type.
    pub fn attr_type(&self, class: ClassId, attr: AttrId) -> AttrType {
        self.classes[class.0 as usize].attrs[attr.0 as usize].ty
    }

    /// Attributes declared directly on `class`.
    pub fn own_attrs(&self, class: ClassId) -> impl Iterator<Item = (AttrId, &str, AttrType)> {
        self.classes[class.0 as usize]
            .attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u32), a.name.as_str(), a.ty))
    }

    /// Resolve an attribute by name on `class`, searching inherited
    /// attributes (first-parent order) when not declared directly. Returns
    /// the declaring class together with the attribute id.
    pub fn resolve_attr(&self, class: ClassId, name: &str) -> Option<(ClassId, AttrId)> {
        let data = &self.classes[class.0 as usize];
        if let Some(i) = data.attrs.iter().position(|a| a.name == name) {
            return Some((class, AttrId(i as u32)));
        }
        for &p in &data.parents {
            if let Some(found) = self.resolve_attr(p, name) {
                return Some(found);
            }
        }
        None
    }

    /// Whether `a` is `b` or a (transitive) sub-class of `b`.
    pub fn is_subclass_of(&self, a: ClassId, b: ClassId) -> bool {
        if a == b {
            return true;
        }
        self.classes[a.0 as usize]
            .parents
            .iter()
            .any(|&p| self.is_subclass_of(p, b))
    }

    /// The hierarchy root above `id` (following first parents).
    pub fn hierarchy_root(&self, id: ClassId) -> ClassId {
        match self.classes[id.0 as usize].parents.first() {
            Some(&p) => self.hierarchy_root(p),
            None => id,
        }
    }

    /// Hierarchy roots (classes without parents) in insertion order.
    pub fn roots(&self) -> Vec<ClassId> {
        self.class_ids()
            .filter(|&c| self.parents(c).is_empty())
            .collect()
    }

    /// Pre-order walk of the sub-tree rooted at `id` (following
    /// first-parent children only, so multiply-inherited classes appear
    /// under their first parent).
    pub fn subtree(&self, id: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        self.subtree_rec(id, &mut out);
        out
    }

    fn subtree_rec(&self, id: ClassId, out: &mut Vec<ClassId>) {
        out.push(id);
        for &c in self.children(id) {
            // Only recurse through primary-parent children; secondary
            // (multiple-inheritance) children live under their first parent.
            if self.classes[c.0 as usize].parents.first() == Some(&id) {
                self.subtree_rec(c, out);
            }
        }
    }

    /// All REF edges induced by reference attributes.
    pub fn ref_edges(&self) -> Vec<RefEdge> {
        let mut out = Vec::new();
        for c in self.class_ids() {
            for (attr, _, ty) in self.own_attrs(c) {
                if let Some(target) = ty.ref_target() {
                    out.push(RefEdge {
                        source: c,
                        attr,
                        target,
                        multi: matches!(ty, AttrType::RefSet(_)),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Schema, ClassId, ClassId, ClassId, ClassId) {
        let mut s = Schema::new();
        let vehicle = s.add_class("Vehicle").unwrap();
        let auto = s.add_subclass("Automobile", vehicle).unwrap();
        let truck = s.add_subclass("Truck", vehicle).unwrap();
        let compact = s.add_subclass("Compact", auto).unwrap();
        (s, vehicle, auto, truck, compact)
    }

    #[test]
    fn names_and_lookup() {
        let (s, vehicle, auto, ..) = sample();
        assert_eq!(s.class_name(vehicle), "Vehicle");
        assert_eq!(s.class_by_name("Automobile"), Some(auto));
        assert_eq!(s.class_by_name("Nope"), None);
        assert_eq!(s.num_classes(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.add_class("A").unwrap();
        assert!(matches!(s.add_class("A"), Err(Error::DuplicateClass(_))));
    }

    #[test]
    fn subclass_relationships() {
        let (s, vehicle, auto, truck, compact) = sample();
        assert!(s.is_subclass_of(compact, vehicle));
        assert!(s.is_subclass_of(compact, auto));
        assert!(!s.is_subclass_of(compact, truck));
        assert!(s.is_subclass_of(vehicle, vehicle));
        assert!(!s.is_subclass_of(vehicle, auto));
        assert_eq!(s.hierarchy_root(compact), vehicle);
        assert_eq!(s.roots(), vec![vehicle]);
    }

    #[test]
    fn subtree_preorder() {
        let (s, vehicle, auto, truck, compact) = sample();
        assert_eq!(s.subtree(vehicle), vec![vehicle, auto, compact, truck]);
        assert_eq!(s.subtree(auto), vec![auto, compact]);
        assert_eq!(s.subtree(truck), vec![truck]);
    }

    #[test]
    fn hierarchy_cycle_rejected() {
        let (mut s, vehicle, _, _, compact) = sample();
        assert!(matches!(
            s.add_parent(vehicle, compact),
            Err(Error::HierarchyCycle(_))
        ));
        assert!(matches!(
            s.add_parent(vehicle, vehicle),
            Err(Error::HierarchyCycle(_))
        ));
    }

    #[test]
    fn multiple_inheritance() {
        let (mut s, vehicle, auto, truck, _) = sample();
        let amphibious = s.add_subclass("Amphibious", auto).unwrap();
        s.add_parent(amphibious, truck).unwrap();
        assert!(s.is_subclass_of(amphibious, auto));
        assert!(s.is_subclass_of(amphibious, truck));
        // Appears only under its first parent in the pre-order walk.
        let sub = s.subtree(vehicle);
        assert_eq!(sub.iter().filter(|&&c| c == amphibious).count(), 1);
    }

    #[test]
    fn attrs_and_resolution() {
        let (mut s, vehicle, auto, _, compact) = sample();
        let color = s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
        s.add_attr(auto, "Doors", AttrType::Int).unwrap();
        assert!(matches!(
            s.add_attr(vehicle, "Color", AttrType::Str),
            Err(Error::DuplicateAttr(_))
        ));
        // Inherited resolution finds the declaring class.
        assert_eq!(s.resolve_attr(compact, "Color"), Some((vehicle, color)));
        assert!(s.resolve_attr(compact, "Doors").is_some());
        assert_eq!(s.resolve_attr(vehicle, "Doors"), None);
        assert_eq!(s.attr_name(vehicle, color), "Color");
    }

    #[test]
    fn ref_edges_from_attrs() {
        let mut s = Schema::new();
        let emp = s.add_class("Employee").unwrap();
        let com = s.add_class("Company").unwrap();
        let veh = s.add_class("Vehicle").unwrap();
        s.add_attr(com, "President", AttrType::Ref(emp)).unwrap();
        s.add_attr(veh, "MadeBy", AttrType::Ref(com)).unwrap();
        s.add_attr(veh, "Owners", AttrType::RefSet(emp)).unwrap();
        let edges = s.ref_edges();
        assert_eq!(edges.len(), 3);
        assert!(edges
            .iter()
            .any(|e| e.source == com && e.target == emp && !e.multi));
        assert!(edges
            .iter()
            .any(|e| e.source == veh && e.target == emp && e.multi));
    }
}
