//! Code assignment: the paper's `COD` relation.
//!
//! [`Encoding::generate`] orders hierarchy roots by a topological sort of the
//! contracted REF graph (targets before sources, so `Employee < Company <
//! Vehicle`), then assigns prefix codes down each hierarchy in pre-order.
//! [`Encoding::assign_class`] and [`Encoding::assign_root`] implement schema
//! evolution (Fig. 4) by fractional insertion, never renaming existing
//! classes.

use std::collections::{BTreeMap, HashSet};

use crate::code::ClassCode;
use crate::error::{Error, Result};
use crate::frac;
use crate::model::{AttrId, ClassId, RefEdge, Schema};

/// An assignment of [`ClassCode`]s to (a subset of) a schema's classes.
#[derive(Debug, Clone, Default)]
pub struct Encoding {
    codes: Vec<Option<ClassCode>>,
    by_code: BTreeMap<Vec<u8>, ClassId>,
}

impl Encoding {
    /// Generate codes for every class, honouring all REF edges.
    ///
    /// Fails with [`Error::RefCycle`] if the contracted REF graph is cyclic;
    /// use [`crate::cycles::partition_acyclic`] to split the edges and
    /// generate one encoding per group (paper §4.3).
    pub fn generate(schema: &Schema) -> Result<Encoding> {
        Self::generate_ignoring(schema, &HashSet::new())
    }

    /// Like [`Encoding::generate`] but ignoring the given REF edges
    /// (identified by `(source, attr)`) when ordering hierarchy roots.
    pub fn generate_ignoring(
        schema: &Schema,
        ignored: &HashSet<(ClassId, AttrId)>,
    ) -> Result<Encoding> {
        let roots = schema.roots();
        let order = topo_order_roots(schema, &roots, ignored)?;
        let comps = frac::sequence(order.len());
        let mut enc = Encoding {
            codes: vec![None; schema.num_classes()],
            by_code: BTreeMap::new(),
        };
        for (root, comp) in order.iter().zip(comps) {
            let code = ClassCode::root(&comp);
            enc.assign_subtree(schema, *root, code);
        }
        Ok(enc)
    }

    fn assign_subtree(&mut self, schema: &Schema, class: ClassId, code: ClassCode) {
        let children: Vec<ClassId> = schema
            .children(class)
            .iter()
            .copied()
            .filter(|&c| schema.parents(c).first() == Some(&class))
            .collect();
        let comps = frac::sequence(children.len());
        self.set(class, code.clone());
        for (child, comp) in children.iter().zip(comps) {
            self.assign_subtree(schema, *child, code.child(&comp));
        }
    }

    fn set(&mut self, class: ClassId, code: ClassCode) {
        self.by_code.insert(code.as_bytes().to_vec(), class);
        if class.0 as usize >= self.codes.len() {
            // Schema evolution adds classes after generation.
            self.codes.resize(class.0 as usize + 1, None);
        }
        self.codes[class.0 as usize] = Some(code);
    }

    /// Install a known code directly (used when reloading an encoding from
    /// a persisted catalog). The caller is responsible for the code's
    /// consistency with the schema.
    pub fn set_raw(&mut self, class: ClassId, code: ClassCode) {
        self.set(class, code);
    }

    /// The code of `class`, if assigned.
    pub fn code(&self, class: ClassId) -> Option<&ClassCode> {
        self.codes.get(class.0 as usize)?.as_ref()
    }

    /// Reverse lookup: the class owning exactly this code encoding.
    pub fn class_by_code(&self, bytes: &[u8]) -> Option<ClassId> {
        self.by_code.get(bytes).copied()
    }

    /// All `(code, class)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], ClassId)> {
        self.by_code.iter().map(|(b, c)| (b.as_slice(), *c))
    }

    /// The byte range `[lo, hi)` covering the class and its entire coded
    /// sub-tree.
    pub fn subtree_range(&self, class: ClassId) -> Option<(Vec<u8>, Vec<u8>)> {
        let code = self.code(class)?;
        Some((code.as_bytes().to_vec(), code.subtree_end()))
    }

    /// Schema evolution, Fig. 4a: assign a code to a newly added class whose
    /// parent (or root status) already exists in this encoding. The new
    /// component is placed after the last encoded sibling.
    pub fn assign_class(&mut self, schema: &Schema, class: ClassId) -> Result<&ClassCode> {
        if self.code(class).is_some() {
            return Err(Error::AlreadyEncoded(class));
        }
        let parent = match schema.parents(class).first() {
            Some(&p) => p,
            None => return self.assign_root(schema, class),
        };
        let parent_code = self
            .code(parent)
            .ok_or(Error::ParentNotEncoded(class))?
            .clone();
        // Last existing sibling component under this parent.
        let last_sibling_comp: Option<Vec<u8>> = schema
            .children(parent)
            .iter()
            .filter(|&&c| c != class)
            .filter_map(|&c| self.code(c))
            .filter(|c| c.parent().as_ref() == Some(&parent_code))
            .map(|c| c.last_component().to_vec())
            .max();
        let comp = frac::between(last_sibling_comp.as_deref(), None);
        self.set(class, parent_code.child(&comp));
        Ok(self.code(class).expect("just set"))
    }

    /// Schema evolution, Fig. 4b: assign a root component to a new
    /// hierarchy root, positioned between the REF targets it references and
    /// the REF sources referencing it.
    pub fn assign_root(&mut self, schema: &Schema, class: ClassId) -> Result<&ClassCode> {
        if self.code(class).is_some() {
            return Err(Error::AlreadyEncoded(class));
        }
        // Lower bound: the largest root component among hierarchies this
        // class's hierarchy references. Upper bound: the smallest root
        // component among hierarchies referencing it.
        let mut lo: Option<Vec<u8>> = None;
        let mut hi: Option<Vec<u8>> = None;
        for e in schema.ref_edges() {
            let src_root = schema.hierarchy_root(e.source);
            let tgt_root = schema.hierarchy_root(e.target);
            if src_root == class && tgt_root != class {
                if let Some(code) = self.code(tgt_root) {
                    let comp = code.components().next().unwrap().to_vec();
                    lo = Some(lo.map_or(comp.clone(), |l: Vec<u8>| l.max(comp)));
                }
            } else if tgt_root == class && src_root != class {
                if let Some(code) = self.code(src_root) {
                    let comp = code.components().next().unwrap().to_vec();
                    hi = Some(hi.map_or(comp.clone(), |h: Vec<u8>| h.min(comp)));
                }
            }
        }
        if lo.is_none() && hi.is_none() {
            // Unconstrained: place after the last existing root.
            lo = self
                .by_code
                .values()
                .filter_map(|&c| self.code(c))
                .filter(|c| c.depth() == 1)
                .map(|c| c.last_component().to_vec())
                .max();
        }
        if let (Some(l), Some(h)) = (&lo, &hi) {
            if l >= h {
                return Err(Error::NoRoomForRoot(class));
            }
        }
        let comp = frac::between(lo.as_deref(), hi.as_deref());
        self.set(class, ClassCode::root(&comp));
        Ok(self.code(class).expect("just set"))
    }

    /// Verify the paper's two ordering properties over this encoding:
    /// pre-order equals code order within every hierarchy, and (for
    /// non-ignored REF edges) target roots sort before source roots.
    pub fn verify(&self, schema: &Schema, ignored: &HashSet<(ClassId, AttrId)>) -> Result<()> {
        for root in schema.roots() {
            let pre = schema.subtree(root);
            let mut sorted = pre.clone();
            sorted.sort_by(|a, b| {
                self.code(*a)
                    .map(|c| c.as_bytes().to_vec())
                    .cmp(&self.code(*b).map(|c| c.as_bytes().to_vec()))
            });
            if pre != sorted {
                return Err(Error::RefCycle(vec![])); // ordering property violated
            }
        }
        for e in schema.ref_edges() {
            if ignored.contains(&(e.source, e.attr)) {
                continue;
            }
            let (sr, tr) = (
                schema.hierarchy_root(e.source),
                schema.hierarchy_root(e.target),
            );
            if sr == tr {
                continue; // intra-hierarchy reference: no ordering demanded
            }
            if let (Some(s), Some(t)) = (self.code(sr), self.code(tr)) {
                if t.as_bytes() >= s.as_bytes() {
                    return Err(Error::RefCycle(vec![e]));
                }
            }
        }
        Ok(())
    }
}

/// Topologically order hierarchy roots so that REF targets come before REF
/// sources. Stable: ties broken by class insertion order.
fn topo_order_roots(
    schema: &Schema,
    roots: &[ClassId],
    ignored: &HashSet<(ClassId, AttrId)>,
) -> Result<Vec<ClassId>> {
    let index: BTreeMap<ClassId, usize> = roots.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let n = roots.len();
    // adj[t] -> sources that must come after t.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_deg = vec![0usize; n];
    let mut edge_set = HashSet::new();
    let mut relevant_edges: Vec<RefEdge> = Vec::new();
    for e in schema.ref_edges() {
        if ignored.contains(&(e.source, e.attr)) {
            continue;
        }
        let s = index[&schema.hierarchy_root(e.source)];
        let t = index[&schema.hierarchy_root(e.target)];
        if s == t {
            continue;
        }
        relevant_edges.push(e);
        if edge_set.insert((t, s)) {
            out_edges[t].push(s);
            in_deg[s] += 1;
        }
    }
    // Kahn with a sorted frontier for determinism.
    let mut frontier: Vec<usize> = (0..n).filter(|&i| in_deg[i] == 0).collect();
    frontier.sort_unstable();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = frontier.first().copied() {
        frontier.remove(0);
        order.push(roots[i]);
        for &j in &out_edges[i] {
            in_deg[j] -= 1;
            if in_deg[j] == 0 {
                let pos = frontier.partition_point(|&k| k < j);
                frontier.insert(pos, j);
            }
        }
    }
    if order.len() != n {
        // Report the edges among the remaining (cyclic) roots.
        let stuck: HashSet<ClassId> = roots
            .iter()
            .filter(|r| !order.contains(r))
            .copied()
            .collect();
        let edges = relevant_edges
            .into_iter()
            .filter(|e| {
                stuck.contains(&schema.hierarchy_root(e.source))
                    && stuck.contains(&schema.hierarchy_root(e.target))
            })
            .collect();
        return Err(Error::RefCycle(edges));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AttrType;

    /// The paper's Figure 1 schema (City, Employee, Company, Division,
    /// Vehicle with sub-hierarchies).
    fn paper_schema() -> (Schema, Vec<ClassId>) {
        let mut s = Schema::new();
        let employee = s.add_class("Employee").unwrap();
        s.add_attr(employee, "Age", AttrType::Int).unwrap();
        let city = s.add_class("City").unwrap();
        let company = s.add_class("Company").unwrap();
        s.add_attr(company, "President", AttrType::Ref(employee))
            .unwrap();
        let division = s.add_class("Division").unwrap();
        s.add_attr(division, "Belong", AttrType::Ref(company))
            .unwrap();
        s.add_attr(division, "LocatedIn", AttrType::Ref(city))
            .unwrap();
        let vehicle = s.add_class("Vehicle").unwrap();
        s.add_attr(vehicle, "ManufacturedBy", AttrType::Ref(company))
            .unwrap();
        s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
        let auto = s.add_subclass("Automobile", vehicle).unwrap();
        let truck = s.add_subclass("Truck", vehicle).unwrap();
        let compact = s.add_subclass("CompactAutomobile", auto).unwrap();
        let auto_co = s.add_subclass("AutoCompany", company).unwrap();
        let truck_co = s.add_subclass("TruckCompany", company).unwrap();
        let jap_co = s.add_subclass("JapaneseAutoCompany", auto_co).unwrap();
        (
            s,
            vec![
                employee, city, company, division, vehicle, auto, truck, compact, auto_co,
                truck_co, jap_co,
            ],
        )
    }

    #[test]
    fn paper_ordering_properties() {
        let (s, ids) = paper_schema();
        let enc = Encoding::generate(&s).unwrap();
        enc.verify(&s, &HashSet::new()).unwrap();
        let code = |i: usize| enc.code(ids[i]).unwrap().as_bytes().to_vec();
        let (employee, _city, company, _division, vehicle) =
            (code(0), code(1), code(2), code(3), code(4));
        // REF targets before sources, exactly like C1 < C2 < C5.
        assert!(employee < company);
        assert!(company < vehicle);
        // Sub-classes inside parents' region.
        let auto = enc.code(ids[5]).unwrap();
        let vehicle_code = enc.code(ids[4]).unwrap();
        assert!(auto.has_prefix(vehicle_code));
        let compact = enc.code(ids[7]).unwrap();
        assert!(compact.has_prefix(auto));
        assert!(compact.has_prefix(vehicle_code));
        // JapaneseAutoCompany under AutoCompany under Company.
        let jap = enc.code(ids[10]).unwrap();
        assert!(jap.has_prefix(enc.code(ids[8]).unwrap()));
        assert!(jap.has_prefix(enc.code(ids[2]).unwrap()));
    }

    #[test]
    fn preorder_equals_code_order() {
        let (s, ids) = paper_schema();
        let enc = Encoding::generate(&s).unwrap();
        let vehicle = ids[4];
        let pre = s.subtree(vehicle);
        let mut by_code = pre.clone();
        by_code.sort_by_key(|c| enc.code(*c).unwrap().as_bytes().to_vec());
        assert_eq!(pre, by_code);
    }

    #[test]
    fn subtree_range_isolates_hierarchy() {
        let (s, ids) = paper_schema();
        let enc = Encoding::generate(&s).unwrap();
        let (lo, hi) = enc.subtree_range(ids[4]).unwrap(); // Vehicle
        for (i, &id) in ids.iter().enumerate() {
            let code = enc.code(id).unwrap().as_bytes();
            let inside = code >= lo.as_slice() && code < hi.as_slice();
            let is_vehicle_family = s.is_subclass_of(id, ids[4]);
            assert_eq!(inside, is_vehicle_family, "class index {i}");
        }
    }

    #[test]
    fn ref_cycle_detected() {
        let mut s = Schema::new();
        let emp = s.add_class("Employee").unwrap();
        let veh = s.add_class("Vehicle").unwrap();
        // OWN: Employee -> Vehicle, USE: Vehicle -> Employee (paper §4.3).
        s.add_attr(emp, "Own", AttrType::RefSet(veh)).unwrap();
        s.add_attr(veh, "UsedBy", AttrType::RefSet(emp)).unwrap();
        match Encoding::generate(&s) {
            Err(Error::RefCycle(edges)) => assert_eq!(edges.len(), 2),
            other => panic!("expected RefCycle, got {other:?}"),
        }
        // Ignoring one edge breaks the cycle.
        let ignored: HashSet<(ClassId, AttrId)> = [(emp, AttrId(0))].into_iter().collect();
        let enc = Encoding::generate_ignoring(&s, &ignored).unwrap();
        enc.verify(&s, &ignored).unwrap();
    }

    #[test]
    fn evolution_add_subclass() {
        let (mut s, ids) = paper_schema();
        let enc0 = Encoding::generate(&s).unwrap();
        let mut enc = enc0.clone();
        // Fig 4a: add a new class within an existing hierarchy.
        let bus = s.add_subclass("Bus", ids[4]).unwrap();
        let code = enc.assign_class(&s, bus).unwrap().clone();
        assert!(code.has_prefix(enc.code(ids[4]).unwrap()));
        // No existing code changed.
        for &id in &ids {
            assert_eq!(enc.code(id), enc0.code(id));
        }
        // The new code is still inside Vehicle's range and after Truck.
        let (lo, hi) = enc.subtree_range(ids[4]).unwrap();
        assert!(code.as_bytes() >= lo.as_slice() && code.as_bytes() < hi.as_slice());
        assert!(code.as_bytes() > enc.code(ids[6]).unwrap().as_bytes());
        enc.verify(&s, &HashSet::new()).unwrap();
    }

    #[test]
    fn evolution_add_constrained_root() {
        let (mut s, ids) = paper_schema();
        let mut enc = Encoding::generate(&s).unwrap();
        // Fig 4b: a new hierarchy between Company and Vehicle: Dealer
        // references Company, Vehicle references Dealer.
        let dealer = s.add_class("Dealer").unwrap();
        s.add_attr(dealer, "Franchise", AttrType::Ref(ids[2]))
            .unwrap();
        s.add_attr(ids[4], "SoldBy", AttrType::Ref(dealer)).unwrap();
        let code = enc.assign_class(&s, dealer).unwrap().clone();
        assert!(code.as_bytes() > enc.code(ids[2]).unwrap().as_bytes());
        assert!(code.as_bytes() < enc.code(ids[4]).unwrap().as_bytes());
        enc.verify(&s, &HashSet::new()).unwrap();
    }

    #[test]
    fn evolution_no_room_is_cycle() {
        let mut s = Schema::new();
        let a = s.add_class("A").unwrap();
        let b = s.add_class("B").unwrap();
        s.add_attr(b, "ToA", AttrType::Ref(a)).unwrap();
        let mut enc = Encoding::generate(&s).unwrap();
        // New root C that references B but is referenced by A: needs
        // code(B) < code(C) < code(A), but code(A) < code(B). No room.
        let c = s.add_class("C").unwrap();
        s.add_attr(c, "ToB", AttrType::Ref(b)).unwrap();
        s.add_attr(a, "ToC", AttrType::Ref(c)).unwrap();
        assert!(matches!(
            enc.assign_root(&s, c),
            Err(Error::NoRoomForRoot(_))
        ));
    }

    #[test]
    fn evolution_unconstrained_root_goes_last() {
        let (mut s, _) = paper_schema();
        let mut enc = Encoding::generate(&s).unwrap();
        let max_before = enc.iter().map(|(b, _)| b.to_vec()).max().unwrap();
        let island = s.add_class("Island").unwrap();
        let code = enc.assign_class(&s, island).unwrap();
        assert!(code.as_bytes() > max_before.as_slice());
    }

    #[test]
    fn class_by_code_roundtrip() {
        let (s, ids) = paper_schema();
        let enc = Encoding::generate(&s).unwrap();
        for &id in &ids {
            let code = enc.code(id).unwrap();
            assert_eq!(enc.class_by_code(code.as_bytes()), Some(id));
        }
        assert_eq!(enc.class_by_code(b"nonsense"), None);
    }
}
