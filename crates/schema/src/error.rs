use std::fmt;

use crate::model::{ClassId, RefEdge};

/// Errors from schema construction and encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// An attribute name was declared twice on the same class.
    DuplicateAttr(String),
    /// A class id that does not belong to this schema.
    UnknownClass(ClassId),
    /// Adding this SUP edge would make the is-a graph cyclic.
    HierarchyCycle(ClassId),
    /// The contracted REF graph is cyclic, so no single encoding exists;
    /// the offending edges are reported so they can be split into separate
    /// encodings (paper §4.3).
    RefCycle(Vec<RefEdge>),
    /// Evolution: the class already has a code.
    AlreadyEncoded(ClassId),
    /// Evolution: the class's parent has no code yet.
    ParentNotEncoded(ClassId),
    /// Evolution: REF constraints leave no room for the new root
    /// (equivalent to introducing a cycle).
    NoRoomForRoot(ClassId),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateClass(n) => write!(f, "duplicate class name {n:?}"),
            Error::DuplicateAttr(n) => write!(f, "duplicate attribute name {n:?}"),
            Error::UnknownClass(c) => write!(f, "unknown class id {c:?}"),
            Error::HierarchyCycle(c) => {
                write!(f, "is-a cycle introduced at class {c:?}")
            }
            Error::RefCycle(edges) => {
                write!(f, "REF cycle over {} edges; split encodings", edges.len())
            }
            Error::AlreadyEncoded(c) => write!(f, "class {c:?} already encoded"),
            Error::ParentNotEncoded(c) => {
                write!(f, "parent of class {c:?} not encoded yet")
            }
            Error::NoRoomForRoot(c) => {
                write!(f, "REF constraints leave no code slot for root {c:?}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for schema operations.
pub type Result<T> = std::result::Result<T, Error>;
