//! Class codes: component sequences with the prefix property.
//!
//! A code is stored as its byte encoding: each component (a [`crate::frac`]
//! string over `'A'..='Z'`) followed by the terminator byte `0x01`, which is
//! **below** the component alphabet. This gives exactly the two properties
//! the paper's scheme needs:
//!
//! * *prefix property* — a descendant's encoding starts with its ancestor's
//!   complete encoding (including the terminator), so a class hierarchy
//!   sub-tree is one contiguous byte-prefix region;
//! * *sibling disjointness* — two sibling components never produce
//!   overlapping regions even when one component string is a prefix of the
//!   other (`"B"` vs `"BN"`), because the terminator differs from every
//!   alphabet byte.

use std::fmt;

use crate::frac;

/// Byte terminating each component. Must sort below the component alphabet
/// and above the key field separator (0x00) used by the index layer.
pub const COMPONENT_TERMINATOR: u8 = 0x01;

/// An encoded class code. Ordering (derived) is the index key ordering.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassCode {
    bytes: Vec<u8>,
}

impl ClassCode {
    /// A root-level code with a single component.
    ///
    /// # Panics
    /// Panics if `comp` is not a valid [`frac`] component.
    pub fn root(comp: &[u8]) -> Self {
        assert!(frac::is_valid(comp), "invalid component {comp:?}");
        let mut bytes = comp.to_vec();
        bytes.push(COMPONENT_TERMINATOR);
        ClassCode { bytes }
    }

    /// This code extended by one child component.
    ///
    /// # Panics
    /// Panics if `comp` is not a valid [`frac`] component.
    pub fn child(&self, comp: &[u8]) -> Self {
        assert!(frac::is_valid(comp), "invalid component {comp:?}");
        let mut bytes = self.bytes.clone();
        bytes.extend_from_slice(comp);
        bytes.push(COMPONENT_TERMINATOR);
        ClassCode { bytes }
    }

    /// Reconstruct a code from its byte encoding (validating shape).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.is_empty() || *bytes.last().unwrap() != COMPONENT_TERMINATOR {
            return None;
        }
        let mut comp_start = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == COMPONENT_TERMINATOR {
                if !frac::is_valid(&bytes[comp_start..i]) {
                    return None;
                }
                comp_start = i + 1;
            } else if !(frac::MIN..=frac::MAX).contains(&b) {
                return None;
            }
        }
        Some(ClassCode {
            bytes: bytes.to_vec(),
        })
    }

    /// The byte encoding (what index keys embed).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of components (1 for a hierarchy root).
    pub fn depth(&self) -> usize {
        self.bytes
            .iter()
            .filter(|&&b| b == COMPONENT_TERMINATOR)
            .count()
    }

    /// The components in order.
    pub fn components(&self) -> impl Iterator<Item = &[u8]> {
        self.bytes
            .split(|&b| b == COMPONENT_TERMINATOR)
            .filter(|c| !c.is_empty())
    }

    /// The last component.
    pub fn last_component(&self) -> &[u8] {
        self.components().last().expect("code has components")
    }

    /// The parent code (one fewer component), or `None` for a root.
    pub fn parent(&self) -> Option<ClassCode> {
        let comps: Vec<&[u8]> = self.components().collect();
        if comps.len() <= 1 {
            return None;
        }
        let mut bytes = Vec::new();
        for c in &comps[..comps.len() - 1] {
            bytes.extend_from_slice(c);
            bytes.push(COMPONENT_TERMINATOR);
        }
        Some(ClassCode { bytes })
    }

    /// Whether `ancestor`'s encoding is a prefix of this code (true when the
    /// codes are equal, matching the paper's "a class is in its own
    /// sub-tree").
    pub fn has_prefix(&self, ancestor: &ClassCode) -> bool {
        self.bytes.starts_with(&ancestor.bytes)
    }

    /// Exclusive upper bound of this code's sub-tree region: every
    /// descendant code `d` satisfies `self <= d < self.subtree_end()`, and
    /// every non-descendant falls outside.
    pub fn subtree_end(&self) -> Vec<u8> {
        let mut end = self.bytes.clone();
        let last = end.last_mut().expect("code non-empty");
        debug_assert_eq!(*last, COMPONENT_TERMINATOR);
        *last = COMPONENT_TERMINATOR + 1;
        end
    }
}

impl fmt::Debug for ClassCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassCode({self})")
    }
}

impl fmt::Display for ClassCode {
    /// Renders like the paper's codes: components joined by dots,
    /// e.g. `N.B.C`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        for c in self.components() {
            write!(f, "{sep}{}", String::from_utf8_lossy(c))?;
            sep = ".";
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let root = ClassCode::root(b"N");
        let child = root.child(b"B");
        let grand = child.child(b"C");
        assert_eq!(root.to_string(), "N");
        assert_eq!(child.to_string(), "N.B");
        assert_eq!(grand.to_string(), "N.B.C");
        assert_eq!(root.depth(), 1);
        assert_eq!(grand.depth(), 3);
        assert_eq!(grand.last_component(), b"C");
    }

    #[test]
    fn prefix_property() {
        let root = ClassCode::root(b"N");
        let child = root.child(b"B");
        let grand = child.child(b"C");
        assert!(grand.has_prefix(&child));
        assert!(grand.has_prefix(&root));
        assert!(grand.has_prefix(&grand));
        assert!(!root.has_prefix(&child));
        let other = ClassCode::root(b"P");
        assert!(!child.has_prefix(&other));
    }

    #[test]
    fn parent_inverse_of_child() {
        let root = ClassCode::root(b"N");
        let child = root.child(b"B");
        assert_eq!(child.parent(), Some(root.clone()));
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn ordering_is_preorder() {
        // parent < its children < next sibling.
        let a = ClassCode::root(b"N");
        let ab = a.child(b"B");
        let abc = ab.child(b"C");
        let ac = a.child(b"C");
        let b = ClassCode::root(b"P");
        let mut v = vec![b.clone(), ac.clone(), a.clone(), abc.clone(), ab.clone()];
        v.sort();
        assert_eq!(v, vec![a, ab, abc, ac, b]);
    }

    #[test]
    fn sibling_regions_disjoint_even_with_prefix_components() {
        // Sibling components "B" and "BN" (one extends the other): their
        // sub-tree regions must not overlap.
        let root = ClassCode::root(b"N");
        let s1 = root.child(b"B");
        let s2 = root.child(b"BN");
        assert!(s1 < s2);
        let s1_end = s1.subtree_end();
        assert!(
            s2.as_bytes() >= s1_end.as_slice(),
            "sibling {s2:?} inside {s1:?}'s region"
        );
        // And a deep descendant of s1 stays inside s1's region.
        let d = s1.child(b"Z").child(b"Z");
        assert!(d.as_bytes() < s1_end.as_slice());
        assert!(d.has_prefix(&s1));
        assert!(!d.has_prefix(&s2));
    }

    #[test]
    fn subtree_end_bounds() {
        let c = ClassCode::root(b"N").child(b"B");
        let end = c.subtree_end();
        assert!(c.as_bytes() < end.as_slice());
        for comp in [b"B".to_vec(), b"Z".to_vec(), b"BN".to_vec()] {
            let d = c.child(&comp);
            assert!(d.as_bytes() < end.as_slice());
            assert!(d.as_bytes() > c.as_bytes());
        }
        // The next sibling is outside.
        let sib = ClassCode::root(b"N").child(b"C");
        assert!(sib.as_bytes() >= end.as_slice());
    }

    #[test]
    fn from_bytes_validation() {
        let c = ClassCode::root(b"N").child(b"BC");
        assert_eq!(ClassCode::from_bytes(c.as_bytes()), Some(c));
        assert_eq!(ClassCode::from_bytes(b""), None);
        assert_eq!(ClassCode::from_bytes(b"N"), None); // missing terminator
        assert_eq!(ClassCode::from_bytes(&[b'N', 0x01, b'A', 0x01]), None); // 'A' ends comp
        assert_eq!(ClassCode::from_bytes(&[0x01]), None); // empty component
        assert_eq!(ClassCode::from_bytes(&[b'n', 0x01]), None); // lowercase
    }
}
