//! Property-based tests for the fractional-index components and the
//! class-code encoding: the paper's two ordering properties must hold for
//! arbitrary schemas and arbitrary evolution sequences.

use std::collections::HashSet;

use proptest::prelude::*;
use schema::{frac, AttrType, ClassId, Encoding, Schema};

// ---------- frac ------------------------------------------------------------

proptest! {
    /// Repeated insertion at random gaps keeps every component valid and
    /// the order intact.
    #[test]
    fn frac_random_insertions(positions in proptest::collection::vec(0usize..=100, 1..60)) {
        let mut comps: Vec<Vec<u8>> = Vec::new();
        for p in positions {
            let i = p % (comps.len() + 1);
            let lo = if i == 0 { None } else { Some(comps[i - 1].as_slice()) };
            let hi = comps.get(i).map(|v| v.as_slice());
            let c = frac::between(lo, hi);
            prop_assert!(frac::is_valid(&c));
            if let Some(lo) = lo {
                prop_assert!(lo < c.as_slice());
            }
            if let Some(hi) = hi {
                prop_assert!(c.as_slice() < hi);
            }
            comps.insert(i, c);
        }
        for w in comps.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}

// ---------- encoding over random schemas ------------------------------------

/// A recipe for a random schema: a forest shape plus REF edges that are
/// forced acyclic by always referencing a *lower-numbered* root.
#[derive(Debug, Clone)]
struct SchemaRecipe {
    /// parent[i] for class i: None = new root, Some(j < i) = subclass of j.
    parents: Vec<Option<usize>>,
    /// REF edges as (source class, target class) index pairs; constrained
    /// to source-root > target-root at generation.
    refs: Vec<(usize, usize)>,
}

fn arb_recipe() -> impl Strategy<Value = SchemaRecipe> {
    (2usize..25).prop_flat_map(|n| {
        let parents = (0..n)
            .map(|i| {
                if i == 0 {
                    Just(None).boxed()
                } else {
                    prop_oneof![
                        1 => Just(None),
                        3 => (0..i).prop_map(Some),
                    ]
                    .boxed()
                }
            })
            .collect::<Vec<_>>();
        (parents, proptest::collection::vec((0..n, 0..n), 0..n))
            .prop_map(|(parents, refs)| SchemaRecipe { parents, refs })
    })
}

fn build_schema(recipe: &SchemaRecipe) -> (Schema, Vec<ClassId>) {
    let mut s = Schema::new();
    let mut ids = Vec::new();
    for (i, p) in recipe.parents.iter().enumerate() {
        let id = match p {
            None => s.add_class(&format!("C{i}")).unwrap(),
            Some(j) => s.add_subclass(&format!("C{i}"), ids[*j]).unwrap(),
        };
        ids.push(id);
    }
    // Make REF edges acyclic by orienting them from the higher root index
    // to the lower (self-root edges are fine: intra-hierarchy).
    let root_index = |s: &Schema, ids: &[ClassId], c: usize| -> usize {
        let root = s.hierarchy_root(ids[c]);
        ids.iter().position(|&x| x == root).unwrap()
    };
    for (k, (a, b)) in recipe.refs.iter().enumerate() {
        let (src, tgt) = if root_index(&s, &ids, *a) >= root_index(&s, &ids, *b) {
            (*a, *b)
        } else {
            (*b, *a)
        };
        s.add_attr(ids[src], &format!("ref{k}"), AttrType::Ref(ids[tgt]))
            .unwrap();
    }
    (s, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any acyclic schema: pre-order equals code order in every
    /// hierarchy; REF targets sort before sources; sub-tree ranges isolate
    /// exactly the descendants.
    #[test]
    fn encoding_properties_hold(recipe in arb_recipe()) {
        let (s, ids) = build_schema(&recipe);
        let enc = Encoding::generate(&s).unwrap();
        enc.verify(&s, &HashSet::new()).unwrap();
        // Sub-tree ranges isolate descendants, for every class.
        for &c in &ids {
            let (lo, hi) = enc.subtree_range(c).unwrap();
            for &d in &ids {
                let code = enc.code(d).unwrap().as_bytes();
                let inside = code >= lo.as_slice() && code < hi.as_slice();
                prop_assert_eq!(inside, s.is_subclass_of(d, c), "{:?} in {:?}", d, c);
            }
        }
        // Codes are unique and the reverse map agrees.
        let mut seen = HashSet::new();
        for &c in &ids {
            let code = enc.code(c).unwrap().as_bytes().to_vec();
            prop_assert!(seen.insert(code.clone()));
            prop_assert_eq!(enc.class_by_code(&code), Some(c));
        }
    }

    /// Evolution: adding classes one at a time (to existing hierarchies)
    /// never changes existing codes and keeps all properties.
    #[test]
    fn evolution_preserves_codes(
        recipe in arb_recipe(),
        additions in proptest::collection::vec(0usize..20, 1..10),
    ) {
        let (mut s, mut ids) = build_schema(&recipe);
        let mut enc = Encoding::generate(&s).unwrap();
        for (step, pick) in additions.into_iter().enumerate() {
            let before: Vec<Vec<u8>> = ids
                .iter()
                .map(|&c| enc.code(c).unwrap().as_bytes().to_vec())
                .collect();
            let parent = ids[pick % ids.len()];
            let id = s.add_subclass(&format!("new{step}"), parent).unwrap();
            enc.assign_class(&s, id).unwrap();
            ids.push(id);
            // No existing code changed.
            for (i, &c) in ids[..ids.len() - 1].iter().enumerate() {
                prop_assert_eq!(enc.code(c).unwrap().as_bytes(), before[i].as_slice());
            }
            // The new code sits inside its parent's region.
            let (lo, hi) = enc.subtree_range(parent).unwrap();
            let code = enc.code(id).unwrap().as_bytes();
            prop_assert!(code >= lo.as_slice() && code < hi.as_slice());
            enc.verify(&s, &HashSet::new()).unwrap();
        }
    }
}
