//! A B+-tree with variable-length, front-compressed keys over [`pagestore`].
//!
//! This is the single uniform structure the paper builds the U-index on
//! (§3.2: "The index is built with a B-tree with variable-length,
//! front-compressed keys"). Properties:
//!
//! * **Variable-length byte-string keys** with arbitrary (small) values;
//!   entries may be key-only, which is how the U-index stores its
//!   single-value entries.
//! * **Front compression**: within a node, each entry stores only the suffix
//!   that differs from its predecessor. Because capacity is measured in
//!   encoded bytes, compression genuinely increases fanout — this is the
//!   paper's storage argument (§4.2) and is toggleable for the ablation
//!   bench.
//! * **Suffix-truncated separators** in interior nodes (prefix-B-tree
//!   style), also toggleable.
//! * Node capacity either in **bytes** (page-size budget; experiment 2 uses
//!   1024-byte pages) or a fixed **entry count** (experiment 1 uses
//!   max 10 records per node).
//! * Cursors with leaf chaining for forward scans, and `seek` for the
//!   skip-to-key re-descents of the paper's parallel retrieval algorithm.
//!   All page accesses go through the buffer pool, so per-query distinct
//!   page counts come for free.
//!
//! # Example
//!
//! ```
//! use pagestore::{BufferPool, MemStore};
//! use btree::{BTree, BTreeConfig};
//!
//! let pool = BufferPool::new(MemStore::new(256), 64);
//! let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
//! for i in 0..100u32 {
//!     tree.insert(format!("key{i:04}").as_bytes(), &i.to_le_bytes()).unwrap();
//! }
//! assert_eq!(tree.len(), 100);
//! let got = tree.get(b"key0042").unwrap().unwrap();
//! assert_eq!(got, 42u32.to_le_bytes());
//! let mut cur = tree.seek(b"key0098").unwrap();
//! let (k, _) = tree.cursor_entry(&mut cur).unwrap().unwrap();
//! assert_eq!(k, b"key0098");
//! ```

mod bulk;
mod codec;
mod config;
mod cursor;
mod node;
mod tree;
mod verify;

pub use codec::{common_prefix_len, truncate_separator};
pub use config::{BTreeConfig, Capacity};
pub use cursor::{Cursor, EntryRef, ReadView, SeekStats};
pub use node::{Entry, InternalNode, LeafNode, Node};
pub use tree::{BTree, SnapshotTracker, TreeReader, TreeSnapshot};
pub use verify::TreeStats;

pub use pagestore::{Error, Result};
