/// How node capacity is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capacity {
    /// A node is full when its encoded form exceeds the page size. This is
    /// the realistic model used by the paper's second experiment (1024-byte
    /// pages): front compression directly increases fanout.
    Bytes,
    /// A node holds at most this many entries (separators, for interior
    /// nodes), regardless of encoded size. The paper's first experiment uses
    /// a "small node size m = 10".
    Entries(usize),
}

/// Configuration of a [`crate::BTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Node capacity model.
    pub capacity: Capacity,
    /// Front-compress keys within nodes (§3.2). Turning this off is the
    /// storage-cost ablation.
    pub front_compression: bool,
    /// Store shortest distinguishing separators in interior nodes.
    pub suffix_truncation: bool,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig {
            capacity: Capacity::Bytes,
            front_compression: true,
            suffix_truncation: true,
        }
    }
}

impl BTreeConfig {
    /// The paper's experiment-1 configuration: at most `m` records per node.
    pub fn with_max_entries(m: usize) -> Self {
        assert!(m >= 3, "entry capacity must be at least 3");
        BTreeConfig {
            capacity: Capacity::Entries(m),
            ..Default::default()
        }
    }

    /// Disable front compression (ablation A2 in DESIGN.md).
    pub fn without_compression(mut self) -> Self {
        self.front_compression = false;
        self.suffix_truncation = false;
        self
    }

    /// Minimum entry count a non-root node may hold under
    /// [`Capacity::Entries`].
    pub(crate) fn min_entries(&self) -> usize {
        match self.capacity {
            Capacity::Entries(m) => (m / 2).max(1),
            Capacity::Bytes => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = BTreeConfig::default();
        assert_eq!(c.capacity, Capacity::Bytes);
        assert!(c.front_compression);
        assert!(c.suffix_truncation);
    }

    #[test]
    fn entry_capacity_min() {
        assert_eq!(BTreeConfig::with_max_entries(10).min_entries(), 5);
        assert_eq!(BTreeConfig::with_max_entries(3).min_entries(), 1);
    }

    #[test]
    #[should_panic]
    fn tiny_entry_capacity_rejected() {
        let _ = BTreeConfig::with_max_entries(2);
    }
}
