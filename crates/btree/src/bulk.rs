//! Bulk loading and batch updates.
//!
//! Bulk loading builds a packed tree bottom-up from a sorted stream — this is
//! how the experiment databases are indexed, mirroring a freshly built index
//! in the paper. Batch insertion sorts its input first so that updates to
//! clustered key regions (the paper's batched path-update case, §3.5, citing
//! Tsur & Gudes' B-tree reorganization work) hit each leaf once.

use pagestore::{BufferPool, Error, PageId, PageStore, Result};

use crate::codec::{common_prefix_len, truncate_separator, varint_len};
use crate::config::{BTreeConfig, Capacity};
use crate::node::{Entry, InternalNode, LeafNode, Node, INTERIOR_HEADER, LEAF_HEADER};
use crate::tree::BTree;

impl<S: PageStore> BTree<S> {
    /// Build a tree from strictly-ascending `(key, value)` pairs.
    ///
    /// Leaves are packed to capacity; the final node of each level is
    /// redistributed with its left neighbour if it would otherwise be
    /// underfull, so the result satisfies all [`BTree::verify`] invariants.
    pub fn bulk_load<I>(pool: BufferPool<S>, config: BTreeConfig, items: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let mut tree = BTree::create(pool, config)?;
        tree.bulk_replace(items)?;
        Ok(tree)
    }

    /// Fill an **empty** tree from strictly-ascending pairs, packing pages
    /// like [`BTree::bulk_load`]. Fails if the tree is not empty.
    pub fn bulk_replace<I>(&mut self, items: I) -> Result<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        if !self.is_empty() {
            return Err(Error::Corrupt("bulk_replace requires an empty tree".into()));
        }
        self.bump_epoch();
        let tree = self;
        let config = *tree.config();
        let empty_root = tree.root();
        let compress = config.front_compression;
        let page_size = tree.pool().page_size();
        let max_entry = tree.max_entry_size();

        // ---- pack the leaf level (no page ids yet) ----
        let mut leaves: Vec<LeafNode> = Vec::new();
        let mut cur = LeafNode {
            entries: Vec::new(),
            next: PageId::NULL,
        };
        let mut cur_size = LEAF_HEADER;
        let mut prev_key: Option<Vec<u8>> = None;
        let mut count: u64 = 0;

        for (key, value) in items {
            if let Some(p) = &prev_key {
                if p.as_slice() >= key.as_slice() {
                    return Err(Error::Corrupt(
                        "bulk_load input not strictly ascending".into(),
                    ));
                }
            }
            if key.len() + value.len() > max_entry {
                return Err(Error::Corrupt("bulk_load entry too large".into()));
            }
            let plen = if compress && !cur.entries.is_empty() {
                common_prefix_len(prev_key.as_deref().unwrap_or(&[]), &key)
            } else {
                0
            };
            let esize = varint_len(plen as u32)
                + varint_len((key.len() - plen) as u32)
                + (key.len() - plen)
                + varint_len(value.len() as u32)
                + value.len();
            let full = match config.capacity {
                Capacity::Bytes => !cur.entries.is_empty() && cur_size + esize > page_size,
                Capacity::Entries(m) => cur.entries.len() >= m,
            };
            if full {
                leaves.push(std::mem::replace(
                    &mut cur,
                    LeafNode {
                        entries: Vec::new(),
                        next: PageId::NULL,
                    },
                ));
                cur_size = LEAF_HEADER
                    + varint_len(0)
                    + varint_len(key.len() as u32)
                    + key.len()
                    + varint_len(value.len() as u32)
                    + value.len();
            } else {
                cur_size += esize;
            }
            prev_key = Some(key.clone());
            cur.entries.push(Entry { key, value });
            count += 1;
        }
        if !cur.entries.is_empty() || leaves.is_empty() {
            leaves.push(cur);
        }

        // Redistribute an underfull tail leaf with its left neighbour.
        if leaves.len() >= 2 && tree.is_underfull_node(&Node::Leaf(leaves.last().unwrap().clone()))
        {
            let tail = leaves.pop().unwrap();
            let prev = leaves.last_mut().unwrap();
            prev.entries.extend(tail.entries);
            if !tree.fits(&Node::Leaf(prev.clone())) {
                let k = tree.leaf_split_index(prev)?;
                let right_entries = prev.entries.split_off(k);
                leaves.push(LeafNode {
                    entries: right_entries,
                    next: PageId::NULL,
                });
            }
        }

        // Allocate ids, chain, write.
        let mut leaf_ids = Vec::with_capacity(leaves.len());
        for _ in 0..leaves.len() {
            let (id, _) = tree.allocate_page()?;
            leaf_ids.push(id);
        }
        for (i, leaf) in leaves.iter_mut().enumerate() {
            leaf.next = if i + 1 < leaf_ids.len() {
                leaf_ids[i + 1]
            } else {
                PageId::NULL
            };
            tree.store_node(leaf_ids[i], &Node::Leaf(leaf.clone()))?;
        }

        // Separators between adjacent leaves.
        let mut seps: Vec<Vec<u8>> = leaves
            .windows(2)
            .map(|w| {
                let left_max = &w[0].entries.last().expect("packed leaf non-empty").key;
                let right_min = &w[1].entries[0].key;
                if config.suffix_truncation {
                    truncate_separator(left_max, right_min)
                } else {
                    right_min.clone()
                }
            })
            .collect();
        let mut level = leaf_ids;

        // ---- pack interior levels until a single root remains ----
        while level.len() > 1 {
            let mut nodes: Vec<InternalNode> = Vec::new();
            let mut proms: Vec<Vec<u8>> = Vec::new();
            let mut cur = InternalNode {
                seps: Vec::new(),
                children: vec![level[0]],
            };
            let mut cur_size = INTERIOR_HEADER;
            let mut prev_sep: Option<&Vec<u8>> = None;
            for (i, sep) in seps.iter().enumerate() {
                let child = level[i + 1];
                let plen = match (prev_sep, compress) {
                    (Some(p), true) if !cur.seps.is_empty() => common_prefix_len(p, sep),
                    _ => 0,
                };
                let esize = varint_len(plen as u32)
                    + varint_len((sep.len() - plen) as u32)
                    + (sep.len() - plen)
                    + 4;
                let full = match config.capacity {
                    Capacity::Bytes => !cur.seps.is_empty() && cur_size + esize > page_size,
                    Capacity::Entries(m) => cur.seps.len() >= m,
                };
                if full {
                    nodes.push(std::mem::replace(
                        &mut cur,
                        InternalNode {
                            seps: Vec::new(),
                            children: vec![child],
                        },
                    ));
                    proms.push(sep.clone());
                    cur_size = INTERIOR_HEADER;
                } else {
                    cur.seps.push(sep.clone());
                    cur.children.push(child);
                    cur_size += esize;
                }
                prev_sep = Some(sep);
            }
            nodes.push(cur);

            // Redistribute an underfull tail interior node.
            if nodes.len() >= 2
                && tree.is_underfull_node(&Node::Internal(nodes.last().unwrap().clone()))
            {
                let tail = nodes.pop().unwrap();
                let between = proms.pop().expect("promoted sep exists");
                let prev = nodes.last_mut().unwrap();
                prev.seps.push(between);
                prev.seps.extend(tail.seps);
                prev.children.extend(tail.children);
                if !tree.fits(&Node::Internal(prev.clone())) {
                    let p = tree.internal_split_index(prev)?;
                    let right_seps = prev.seps.split_off(p + 1);
                    let promoted = prev.seps.pop().expect("valid promote");
                    let right_children = prev.children.split_off(p + 1);
                    nodes.push(InternalNode {
                        seps: right_seps,
                        children: right_children,
                    });
                    proms.push(promoted);
                }
            }

            let mut ids = Vec::with_capacity(nodes.len());
            for node in &nodes {
                let (id, _) = tree.allocate_page()?;
                tree.store_node(id, &Node::Internal(node.clone()))?;
                ids.push(id);
            }
            level = ids;
            seps = proms;
        }

        // Install the root; drop the placeholder empty leaf if superseded.
        let new_root = level[0];
        if new_root != empty_root {
            tree.free_page(empty_root)?;
        }
        tree.set_root_len(new_root, count);
        Ok(())
    }

    /// Insert many `(key, value)` pairs, sorting them first so clustered
    /// regions are updated with good page locality (batched updates, §3.5).
    ///
    /// Returns the number of keys that were newly inserted (not replaced).
    pub fn insert_batch(&mut self, mut items: Vec<(Vec<u8>, Vec<u8>)>) -> Result<u64> {
        items.sort_by(|a, b| a.0.cmp(&b.0));
        let mut fresh = 0;
        for (k, v) in items {
            if self.insert(&k, &v)?.is_none() {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Delete many keys, sorting them first for page locality.
    ///
    /// Returns the number of keys actually removed.
    pub fn delete_batch(&mut self, mut keys: Vec<Vec<u8>>) -> Result<u64> {
        keys.sort();
        let mut removed = 0;
        for k in keys {
            if self.delete(&k)?.is_some() {
                removed += 1;
            }
        }
        Ok(removed)
    }
}
