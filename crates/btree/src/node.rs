//! In-memory node representation and its (front-compressed) page encoding.
//!
//! Page layouts (all integers little-endian):
//!
//! ```text
//! leaf:     [tag=1][next_leaf u32][count u16][entry]*
//!           entry = varint prefix_len, varint suffix_len, suffix,
//!                   varint value_len, value
//! interior: [tag=0][count u16][child_0 u32][sep-entry]*
//!           sep-entry = varint prefix_len, varint suffix_len, suffix,
//!                       child u32
//! ```
//!
//! `prefix_len` is the number of leading bytes shared with the *previous*
//! key in the node (always 0 for the first entry, and for every entry when
//! front compression is disabled).

use pagestore::{Error, PageId, Result};

use crate::codec::{common_prefix_len, read_varint, varint_len, write_varint};

const TAG_INTERIOR: u8 = 0;
const TAG_LEAF: u8 = 1;

/// Fixed header size of a leaf page (tag + next pointer + count).
pub const LEAF_HEADER: usize = 1 + 4 + 2;
/// Fixed header size of an interior page (tag + count + first child).
pub const INTERIOR_HEADER: usize = 1 + 2 + 4;

/// A key/value pair stored in a leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Full (decompressed) key bytes.
    pub key: Vec<u8>,
    /// Value bytes; may be empty (the U-index stores key-only entries).
    pub value: Vec<u8>,
}

/// A decoded leaf node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafNode {
    /// Entries in strictly increasing key order.
    pub entries: Vec<Entry>,
    /// The next leaf in key order, or [`PageId::NULL`] for the last leaf.
    pub next: PageId,
}

/// A decoded interior node: `children.len() == seps.len() + 1`.
///
/// Routing: a key `k` goes to `children[i]` where `i` is the number of
/// separators `<= k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalNode {
    /// Separator keys (possibly suffix-truncated), strictly increasing.
    pub seps: Vec<Vec<u8>>,
    /// Child page ids.
    pub children: Vec<PageId>,
}

impl InternalNode {
    /// Index of the child a key routes to.
    pub fn route(&self, key: &[u8]) -> usize {
        // partition_point returns the number of separators <= key.
        self.seps.partition_point(|s| s.as_slice() <= key)
    }
}

/// A decoded B-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf level.
    Leaf(LeafNode),
    /// Interior level.
    Internal(InternalNode),
}

impl Node {
    /// A fresh empty leaf.
    pub fn empty_leaf() -> Node {
        Node::Leaf(LeafNode {
            entries: Vec::new(),
            next: PageId::NULL,
        })
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Number of entries (leaf) or separators (interior).
    pub fn count(&self) -> usize {
        match self {
            Node::Leaf(l) => l.entries.len(),
            Node::Internal(i) => i.seps.len(),
        }
    }

    /// Exact size of the encoded form.
    pub fn encoded_size(&self, compress: bool) -> usize {
        match self {
            Node::Leaf(l) => {
                let mut size = LEAF_HEADER;
                let mut prev: &[u8] = &[];
                for e in &l.entries {
                    let plen = if compress {
                        common_prefix_len(prev, &e.key)
                    } else {
                        0
                    };
                    size += entry_size(plen, e.key.len(), Some(e.value.len()));
                    prev = &e.key;
                }
                size
            }
            Node::Internal(n) => {
                let mut size = INTERIOR_HEADER;
                let mut prev: &[u8] = &[];
                for s in &n.seps {
                    let plen = if compress {
                        common_prefix_len(prev, s)
                    } else {
                        0
                    };
                    size += entry_size(plen, s.len(), None);
                    prev = s;
                }
                size
            }
        }
    }

    /// Encode into `page`, zero-padding the tail.
    ///
    /// Fails with [`Error::Corrupt`] if the encoding does not fit — callers
    /// must split before storing.
    pub fn encode(&self, page: &mut [u8], compress: bool) -> Result<()> {
        let mut buf = Vec::with_capacity(page.len());
        match self {
            Node::Leaf(l) => {
                if l.entries.len() > u16::MAX as usize {
                    return Err(Error::Corrupt("too many leaf entries".into()));
                }
                buf.push(TAG_LEAF);
                buf.extend_from_slice(&l.next.to_bytes());
                buf.extend_from_slice(&(l.entries.len() as u16).to_le_bytes());
                let mut prev: &[u8] = &[];
                for e in &l.entries {
                    let plen = if compress {
                        common_prefix_len(prev, &e.key)
                    } else {
                        0
                    };
                    write_varint(&mut buf, plen as u32);
                    write_varint(&mut buf, (e.key.len() - plen) as u32);
                    buf.extend_from_slice(&e.key[plen..]);
                    write_varint(&mut buf, e.value.len() as u32);
                    buf.extend_from_slice(&e.value);
                    prev = &e.key;
                }
            }
            Node::Internal(n) => {
                if n.children.len() != n.seps.len() + 1 {
                    return Err(Error::Corrupt("interior child/sep mismatch".into()));
                }
                if n.seps.len() > u16::MAX as usize {
                    return Err(Error::Corrupt("too many separators".into()));
                }
                buf.push(TAG_INTERIOR);
                buf.extend_from_slice(&(n.seps.len() as u16).to_le_bytes());
                buf.extend_from_slice(&n.children[0].to_bytes());
                let mut prev: &[u8] = &[];
                for (s, child) in n.seps.iter().zip(&n.children[1..]) {
                    let plen = if compress {
                        common_prefix_len(prev, s)
                    } else {
                        0
                    };
                    write_varint(&mut buf, plen as u32);
                    write_varint(&mut buf, (s.len() - plen) as u32);
                    buf.extend_from_slice(&s[plen..]);
                    buf.extend_from_slice(&child.to_bytes());
                    prev = s;
                }
            }
        }
        if buf.len() > page.len() {
            return Err(Error::Corrupt(format!(
                "node encoding {} bytes exceeds page size {}",
                buf.len(),
                page.len()
            )));
        }
        page[..buf.len()].copy_from_slice(&buf);
        page[buf.len()..].fill(0);
        Ok(())
    }

    /// Decode a node from page bytes.
    pub fn decode(page: &[u8]) -> Result<Node> {
        let tag = *page
            .first()
            .ok_or_else(|| Error::Corrupt("empty page".into()))?;
        match tag {
            TAG_LEAF => {
                if page.len() < LEAF_HEADER {
                    return Err(Error::Corrupt("leaf header truncated".into()));
                }
                let next = PageId::from_bytes(page[1..5].try_into().unwrap());
                let count = u16::from_le_bytes(page[5..7].try_into().unwrap()) as usize;
                let mut pos = LEAF_HEADER;
                let mut entries = Vec::with_capacity(count);
                let mut prev: Vec<u8> = Vec::new();
                for _ in 0..count {
                    let plen = read_varint(page, &mut pos)? as usize;
                    let slen = read_varint(page, &mut pos)? as usize;
                    if plen > prev.len() || pos + slen > page.len() {
                        return Err(Error::Corrupt("bad leaf entry lengths".into()));
                    }
                    let mut key = Vec::with_capacity(plen + slen);
                    key.extend_from_slice(&prev[..plen]);
                    key.extend_from_slice(&page[pos..pos + slen]);
                    pos += slen;
                    let vlen = read_varint(page, &mut pos)? as usize;
                    if pos + vlen > page.len() {
                        return Err(Error::Corrupt("bad leaf value length".into()));
                    }
                    let value = page[pos..pos + vlen].to_vec();
                    pos += vlen;
                    prev = key.clone();
                    entries.push(Entry { key, value });
                }
                Ok(Node::Leaf(LeafNode { entries, next }))
            }
            TAG_INTERIOR => {
                if page.len() < INTERIOR_HEADER {
                    return Err(Error::Corrupt("interior header truncated".into()));
                }
                let count = u16::from_le_bytes(page[1..3].try_into().unwrap()) as usize;
                let first_child = PageId::from_bytes(page[3..7].try_into().unwrap());
                let mut pos = INTERIOR_HEADER;
                let mut seps = Vec::with_capacity(count);
                let mut children = Vec::with_capacity(count + 1);
                children.push(first_child);
                let mut prev: Vec<u8> = Vec::new();
                for _ in 0..count {
                    let plen = read_varint(page, &mut pos)? as usize;
                    let slen = read_varint(page, &mut pos)? as usize;
                    if plen > prev.len() || pos + slen > page.len() {
                        return Err(Error::Corrupt("bad separator lengths".into()));
                    }
                    let mut sep = Vec::with_capacity(plen + slen);
                    sep.extend_from_slice(&prev[..plen]);
                    sep.extend_from_slice(&page[pos..pos + slen]);
                    pos += slen;
                    if pos + 4 > page.len() {
                        return Err(Error::Corrupt("child pointer truncated".into()));
                    }
                    children.push(PageId::from_bytes(page[pos..pos + 4].try_into().unwrap()));
                    pos += 4;
                    prev = sep.clone();
                    seps.push(sep);
                }
                Ok(Node::Internal(InternalNode { seps, children }))
            }
            t => Err(Error::Corrupt(format!("unknown node tag {t}"))),
        }
    }
}

fn entry_size(plen: usize, key_len: usize, value_len: Option<usize>) -> usize {
    let slen = key_len - plen;
    let mut size = varint_len(plen as u32) + varint_len(slen as u32) + slen;
    match value_len {
        Some(v) => size += varint_len(v as u32) + v,
        None => size += 4, // child pointer
    }
    size
}

/// Per-entry encoded sizes used to pick byte-balanced split points.
///
/// Returns `(compressed, uncompressed_first)` for each item: `compressed[i]`
/// is the entry's size when preceded by item `i-1`; `uncompressed_first[i]`
/// is its size as the first entry of a node (prefix length 0).
pub(crate) fn segment_sizes<'a, I>(
    items: I,
    value_lens: Option<&[usize]>,
    compress: bool,
) -> (Vec<usize>, Vec<usize>)
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let keys: Vec<&[u8]> = items.into_iter().collect();
    let mut compressed = Vec::with_capacity(keys.len());
    let mut first = Vec::with_capacity(keys.len());
    let mut prev: &[u8] = &[];
    for (i, k) in keys.iter().enumerate() {
        let vlen = value_lens.map(|v| v[i]);
        let plen = if compress {
            common_prefix_len(prev, k)
        } else {
            0
        };
        compressed.push(entry_size(plen, k.len(), vlen));
        first.push(entry_size(0, k.len(), vlen));
        prev = k;
    }
    (compressed, first)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(keys: &[&str]) -> Node {
        Node::Leaf(LeafNode {
            entries: keys
                .iter()
                .map(|k| Entry {
                    key: k.as_bytes().to_vec(),
                    value: format!("v-{k}").into_bytes(),
                })
                .collect(),
            next: PageId(7),
        })
    }

    #[test]
    fn leaf_roundtrip_compressed() {
        let node = leaf(&["apple", "applesauce", "apricot", "banana"]);
        let mut page = vec![0u8; 256];
        node.encode(&mut page, true).unwrap();
        let back = Node::decode(&page).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn leaf_roundtrip_uncompressed() {
        let node = leaf(&["apple", "applesauce", "apricot", "banana"]);
        let mut page = vec![0u8; 256];
        node.encode(&mut page, false).unwrap();
        let back = Node::decode(&page).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn compression_shrinks_shared_prefixes() {
        let node = leaf(&[
            "shared-prefix-aaaa",
            "shared-prefix-aaab",
            "shared-prefix-aaac",
            "shared-prefix-aaad",
        ]);
        let c = node.encoded_size(true);
        let u = node.encoded_size(false);
        assert!(
            c + 3 * ("shared-prefix-aaa".len() - 2) <= u,
            "compressed {c} not much smaller than uncompressed {u}"
        );
    }

    #[test]
    fn encoded_size_is_exact() {
        for compress in [true, false] {
            let node = leaf(&["a", "ab", "abc", "b", "ba"]);
            let mut page = vec![0u8; 512];
            node.encode(&mut page, compress).unwrap();
            // Re-encode into a buffer of exactly the reported size: must fit.
            let size = node.encoded_size(compress);
            let mut tight = vec![0u8; size];
            node.encode(&mut tight, compress).unwrap();
            // One byte less must fail.
            let mut small = vec![0u8; size - 1];
            assert!(node.encode(&mut small, compress).is_err());
        }
    }

    #[test]
    fn interior_roundtrip() {
        let node = Node::Internal(InternalNode {
            seps: vec![b"m".to_vec(), b"mm".to_vec(), b"t".to_vec()],
            children: vec![PageId(1), PageId(2), PageId(3), PageId(4)],
        });
        let mut page = vec![0u8; 128];
        node.encode(&mut page, true).unwrap();
        assert_eq!(Node::decode(&page).unwrap(), node);
    }

    #[test]
    fn empty_nodes_roundtrip() {
        let mut page = vec![0u8; 64];
        let node = Node::empty_leaf();
        node.encode(&mut page, true).unwrap();
        assert_eq!(Node::decode(&page).unwrap(), node);

        let node = Node::Internal(InternalNode {
            seps: vec![],
            children: vec![PageId(9)],
        });
        node.encode(&mut page, true).unwrap();
        assert_eq!(Node::decode(&page).unwrap(), node);
    }

    #[test]
    fn routing() {
        let n = InternalNode {
            seps: vec![b"g".to_vec(), b"p".to_vec()],
            children: vec![PageId(0), PageId(1), PageId(2)],
        };
        assert_eq!(n.route(b"a"), 0);
        assert_eq!(n.route(b"f"), 0);
        assert_eq!(n.route(b"g"), 1); // key == separator goes right
        assert_eq!(n.route(b"o"), 1);
        assert_eq!(n.route(b"p"), 2);
        assert_eq!(n.route(b"z"), 2);
    }

    #[test]
    fn decode_garbage_fails() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[9u8; 32]).is_err());
        // Leaf claiming more entries than present.
        let mut page = vec![0u8; 32];
        page[0] = TAG_LEAF;
        page[5] = 200;
        assert!(Node::decode(&page).is_err());
    }

    #[test]
    fn interior_mismatch_rejected() {
        let node = Node::Internal(InternalNode {
            seps: vec![b"x".to_vec()],
            children: vec![PageId(1)], // should be 2 children
        });
        let mut page = vec![0u8; 64];
        assert!(node.encode(&mut page, true).is_err());
    }
}
