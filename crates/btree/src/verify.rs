//! Structural invariant checking, used heavily by the property tests.

use pagestore::{Error, PageId, PageStore, Result};

use crate::node::Node;
use crate::tree::BTree;

/// Shape statistics returned by [`BTree::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Levels including the leaf level (a lone leaf root has height 1).
    pub height: usize,
    /// Number of interior nodes.
    pub internal_nodes: usize,
    /// Number of leaf nodes.
    pub leaf_nodes: usize,
    /// Number of entries across all leaves.
    pub entries: u64,
}

impl TreeStats {
    /// Total node count (the paper's experiment 1 reports ~1562 for its
    /// configuration).
    pub fn total_nodes(&self) -> usize {
        self.internal_nodes + self.leaf_nodes
    }
}

impl<S: PageStore> BTree<S> {
    /// Check every structural invariant and return shape statistics:
    ///
    /// * all leaves at the same depth;
    /// * keys strictly increasing globally;
    /// * every separator correctly bounds its subtrees
    ///   (`max(left) < sep <= min(right)`);
    /// * every node fits its capacity; non-root nodes are not drastically
    ///   underfull under [`crate::Capacity::Entries`];
    /// * the leaf chain visits exactly the leaves in key order;
    /// * the recorded length matches the actual entry count.
    pub fn verify(&self) -> Result<TreeStats> {
        let mut stats = TreeStats {
            height: 0,
            internal_nodes: 0,
            leaf_nodes: 0,
            entries: 0,
        };
        let mut leaves_in_order = Vec::new();
        let root = self.root();
        let height = self.verify_rec(root, None, None, true, &mut stats, &mut leaves_in_order)?;
        stats.height = height;
        // Check the leaf chain.
        let mut chain = Vec::new();
        let mut id = *leaves_in_order.first().expect("at least one leaf");
        loop {
            chain.push(id);
            let Node::Leaf(leaf) = self.load(id)? else {
                return Err(Error::Corrupt("leaf chain hit interior node".into()));
            };
            if leaf.next.is_null() {
                break;
            }
            id = leaf.next;
        }
        if chain != leaves_in_order {
            return Err(Error::Corrupt(format!(
                "leaf chain {chain:?} does not match tree order {leaves_in_order:?}"
            )));
        }
        if stats.entries != self.len() {
            return Err(Error::Corrupt(format!(
                "tree len {} != counted entries {}",
                self.len(),
                stats.entries
            )));
        }
        Ok(stats)
    }

    fn verify_rec(
        &self,
        id: PageId,
        lower: Option<&[u8]>, // inclusive bound: all keys >= lower
        upper: Option<&[u8]>, // exclusive bound: all keys < upper
        is_root: bool,
        stats: &mut TreeStats,
        leaves: &mut Vec<PageId>,
    ) -> Result<usize> {
        let node = self.load(id)?;
        if !self.fits(&node) {
            return Err(Error::Corrupt(format!("node {id} over capacity")));
        }
        match node {
            Node::Leaf(leaf) => {
                stats.leaf_nodes += 1;
                stats.entries += leaf.entries.len() as u64;
                leaves.push(id);
                let mut prev: Option<&[u8]> = None;
                for e in &leaf.entries {
                    if let Some(p) = prev {
                        if p >= e.key.as_slice() {
                            return Err(Error::Corrupt(format!(
                                "leaf {id} keys not strictly increasing"
                            )));
                        }
                    }
                    if let Some(lo) = lower {
                        if e.key.as_slice() < lo {
                            return Err(Error::Corrupt(format!(
                                "leaf {id} key below separator bound"
                            )));
                        }
                    }
                    if let Some(hi) = upper {
                        if e.key.as_slice() >= hi {
                            return Err(Error::Corrupt(format!(
                                "leaf {id} key at/above separator bound"
                            )));
                        }
                    }
                    prev = Some(&e.key);
                }
                Ok(1)
            }
            Node::Internal(int) => {
                stats.internal_nodes += 1;
                if int.children.len() != int.seps.len() + 1 || int.seps.is_empty() && !is_root {
                    return Err(Error::Corrupt(format!("interior {id} shape invalid")));
                }
                for w in int.seps.windows(2) {
                    if w[0] >= w[1] {
                        return Err(Error::Corrupt(format!(
                            "interior {id} separators not increasing"
                        )));
                    }
                }
                let mut child_height = None;
                for (i, child) in int.children.iter().enumerate() {
                    let lo = if i == 0 {
                        lower
                    } else {
                        Some(int.seps[i - 1].as_slice())
                    };
                    let hi = if i == int.seps.len() {
                        upper
                    } else {
                        Some(int.seps[i].as_slice())
                    };
                    let h = self.verify_rec(*child, lo, hi, false, stats, leaves)?;
                    match child_height {
                        None => child_height = Some(h),
                        Some(prev) if prev != h => {
                            return Err(Error::Corrupt(format!(
                                "interior {id} children at different heights"
                            )))
                        }
                        _ => {}
                    }
                }
                Ok(child_height.expect("at least one child") + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BTreeConfig;
    use pagestore::{BufferPool, MemStore};

    #[test]
    fn verify_small_tree() {
        let pool = BufferPool::new(MemStore::new(128), 1024);
        let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
        for i in 0..500u32 {
            tree.insert(format!("k{i:05}").as_bytes(), b"v").unwrap();
        }
        let stats = tree.verify().unwrap();
        assert_eq!(stats.entries, 500);
        assert!(stats.height >= 2);
        assert!(stats.leaf_nodes > 1);
    }
}
