//! Byte-level helpers: varints, common prefixes, separator truncation.

use pagestore::{Error, Result};

/// Append `v` as a LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Size in bytes of `v` as a varint.
pub fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0x0FFF_FFFF => 4,
        _ => 5,
    }
}

/// Read a LEB128 varint at `*pos`, advancing it.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let mut v: u32 = 0;
    let mut shift = 0;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| Error::Corrupt("varint past end of page".into()))?;
        *pos += 1;
        if shift >= 32 {
            return Err(Error::Corrupt("varint overflow".into()));
        }
        v |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Length of the longest common prefix of `a` and `b`.
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Shortest separator `t` with `left_max < t <= right_min`.
///
/// This is prefix-B-tree suffix truncation: interior nodes only need enough
/// of a key to route correctly, which keeps them dense. Requires
/// `left_max < right_min`.
pub fn truncate_separator(left_max: &[u8], right_min: &[u8]) -> Vec<u8> {
    debug_assert!(left_max < right_min, "separator inputs out of order");
    let cp = common_prefix_len(left_max, right_min);
    // `right_min[..cp + 1]` always works: it differs from (or extends past)
    // `left_max` at position `cp` and is a prefix of `right_min`.
    let end = (cp + 1).min(right_min.len());
    right_min[..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16383, 16384, 1 << 20, u32::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u32, 5, 127, 128, 16383, 16384, 1 << 21, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "value {v}");
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 300);
        let mut pos = 0;
        assert!(read_varint(&buf[..1], &mut pos).is_err());
    }

    #[test]
    fn common_prefix() {
        assert_eq!(common_prefix_len(b"", b""), 0);
        assert_eq!(common_prefix_len(b"abc", b"abd"), 2);
        assert_eq!(common_prefix_len(b"abc", b"abc"), 3);
        assert_eq!(common_prefix_len(b"abc", b"abcdef"), 3);
        assert_eq!(common_prefix_len(b"xyz", b"abc"), 0);
    }

    #[test]
    fn separator_truncation() {
        // Differ at first byte.
        assert_eq!(truncate_separator(b"apple", b"banana"), b"b".to_vec());
        // Common prefix then divergence.
        assert_eq!(truncate_separator(b"abcX", b"abcZ"), b"abcZ".to_vec());
        // Left is a strict prefix of right.
        assert_eq!(truncate_separator(b"abc", b"abcdef"), b"abcd".to_vec());
        // Adjacent keys of length 1.
        assert_eq!(truncate_separator(b"a", b"b"), b"b".to_vec());
    }

    #[test]
    fn separator_is_valid_for_many_pairs() {
        let keys: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("pre{:05}", i * 7).into_bytes())
            .collect();
        for w in keys.windows(2) {
            let t = truncate_separator(&w[0], &w[1]);
            assert!(w[0].as_slice() < t.as_slice());
            assert!(t.as_slice() <= w[1].as_slice());
        }
    }
}
