//! The B+-tree proper: create, get, insert, delete with rebalancing.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use pagestore::{BufferPool, Error, PageId, PageStore, Result};

use crate::codec::truncate_separator;
use crate::config::{BTreeConfig, Capacity};
use crate::cursor::SeekStats;
use crate::node::{
    segment_sizes, Entry, InternalNode, LeafNode, Node, INTERIOR_HEADER, LEAF_HEADER,
};

/// A B+-tree over a buffer pool. See the crate docs for the feature set.
pub struct BTree<S: PageStore> {
    pub(crate) pool: BufferPool<S>,
    pub(crate) config: BTreeConfig,
    pub(crate) root: PageId,
    len: u64,
    /// Decoded-node cache. Purely a CPU optimization: every access still
    /// goes through [`BufferPool::fetch`] first, so page-read accounting is
    /// unaffected; the cache only skips re-decoding bytes that have not
    /// changed. Entries are invalidated on every write/free of their page.
    node_cache: NodeCache,
    /// Structural mutation counter; retained cursor paths are valid only
    /// while this is unchanged (see [`BTree::reseek`]).
    epoch: u64,
    seek_stats: SeekStats,
    pub(crate) metrics: TreeMetrics,
}

/// Registry handles, resolved once per tree so hot-path increments are a
/// single `Cell` bump (catalog in DESIGN.md §9).
pub(crate) struct TreeMetrics {
    pub(crate) seek_descents: telemetry::Counter,
    pub(crate) seek_nodes: telemetry::Counter,
    /// Reseeks by resolution level: within-leaf, LCA re-descent, full seek.
    pub(crate) reseek_leaf: telemetry::Counter,
    pub(crate) reseek_lca: telemetry::Counter,
    pub(crate) reseek_full: telemetry::Counter,
    splits: telemetry::Counter,
    merges: telemetry::Counter,
}

impl TreeMetrics {
    fn new() -> Self {
        TreeMetrics {
            seek_descents: telemetry::counter("btree.seek.descents"),
            seek_nodes: telemetry::counter("btree.seek.nodes_fetched"),
            reseek_leaf: telemetry::counter("btree.reseek.leaf"),
            reseek_lca: telemetry::counter("btree.reseek.lca"),
            reseek_full: telemetry::counter("btree.reseek.full"),
            splits: telemetry::counter("btree.splits"),
            merges: telemetry::counter("btree.merges"),
        }
    }
}

/// Decoded nodes kept at most by default.
const NODE_CACHE_CAP: usize = 1 << 16;

struct CacheSlot {
    node: Rc<Node>,
    /// Distinguishes this occupancy from earlier ones of the same page id;
    /// clock-queue entries carry the stamp they were enqueued with, so a
    /// remove-then-reinsert of a page cannot be evicted through a stale
    /// queue slot.
    stamp: u64,
    referenced: bool,
}

/// Second-chance (clock) cache of decoded nodes. Replaces the previous
/// wholesale `clear()` at capacity, which evicted the root and every other
/// hot upper-level node in the middle of a scan; with clock eviction, nodes
/// that keep being re-referenced (the root, upper interior levels) survive
/// arbitrarily long leaf churn.
struct NodeCache {
    map: HashMap<PageId, CacheSlot>,
    /// FIFO of `(page, stamp)` in insertion order; stale pairs (page
    /// removed or re-inserted since) are skipped during eviction and
    /// dropped by periodic compaction.
    queue: VecDeque<(PageId, u64)>,
    cap: usize,
    next_stamp: u64,
    evictions: telemetry::Counter,
}

impl NodeCache {
    fn new(cap: usize) -> Self {
        NodeCache {
            map: HashMap::new(),
            queue: VecDeque::new(),
            cap,
            next_stamp: 0,
            evictions: telemetry::counter("btree.node_cache.evictions"),
        }
    }

    fn get(&mut self, id: PageId) -> Option<Rc<Node>> {
        let slot = self.map.get_mut(&id)?;
        slot.referenced = true;
        Some(slot.node.clone())
    }

    fn insert(&mut self, id: PageId, node: Rc<Node>) {
        if self.cap == 0 {
            return;
        }
        self.remove(&id);
        while self.map.len() >= self.cap {
            if !self.evict_one() {
                return; // cache in a degenerate state; don't loop forever
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.map.insert(
            id,
            CacheSlot {
                node,
                stamp,
                referenced: false,
            },
        );
        self.queue.push_back((id, stamp));
        // Invalidation leaves stale pairs behind; keep the queue O(live).
        if self.queue.len() > 2 * self.map.len() + 16 {
            let map = &self.map;
            self.queue
                .retain(|(id, stamp)| map.get(id).is_some_and(|s| s.stamp == *stamp));
        }
    }

    /// Evict one unreferenced entry, giving referenced entries a second
    /// chance. Returns `false` if nothing could be evicted.
    fn evict_one(&mut self) -> bool {
        // Each pop either evicts, clears a referenced bit (at most
        // `map.len()` times in a row), or drops a stale pair, so this
        // terminates.
        while let Some((id, stamp)) = self.queue.pop_front() {
            match self.map.get_mut(&id) {
                Some(slot) if slot.stamp == stamp => {
                    if slot.referenced {
                        slot.referenced = false;
                        self.queue.push_back((id, stamp));
                    } else {
                        self.map.remove(&id);
                        self.evictions.inc();
                        return true;
                    }
                }
                _ => {} // stale pair; discard and keep looking
            }
        }
        false
    }

    fn remove(&mut self, id: &PageId) {
        // The queue pair, if any, goes stale and is skipped on eviction.
        self.map.remove(id);
    }

    fn contains(&self, id: &PageId) -> bool {
        self.map.contains_key(id)
    }

    fn set_capacity(&mut self, cap: usize) {
        self.cap = cap;
        while self.map.len() > self.cap {
            if !self.evict_one() {
                break;
            }
        }
        if self.cap == 0 {
            self.map.clear();
            self.queue.clear();
        }
    }
}

pub(crate) enum Ins {
    Done(Option<Vec<u8>>),
    Split {
        sep: Vec<u8>,
        right: PageId,
        old: Option<Vec<u8>>,
    },
}

enum Del {
    NotFound,
    Done(Vec<u8>),
    Underflow(Vec<u8>),
}

impl<S: PageStore> BTree<S> {
    /// Create an empty tree in `pool`.
    pub fn create(mut pool: BufferPool<S>, config: BTreeConfig) -> Result<Self> {
        let (root, page) = pool.allocate()?;
        Node::empty_leaf().encode(&mut page.write(), config.front_compression)?;
        drop(page);
        Ok(BTree {
            pool,
            config,
            root,
            len: 0,
            node_cache: NodeCache::new(NODE_CACHE_CAP),
            epoch: 0,
            seek_stats: SeekStats::default(),
            metrics: TreeMetrics::new(),
        })
    }

    /// Re-attach to an existing tree rooted at `root` holding `len` entries
    /// (the caller is responsible for persisting those two facts).
    pub fn open(pool: BufferPool<S>, config: BTreeConfig, root: PageId, len: u64) -> Self {
        BTree {
            pool,
            config,
            root,
            len,
            node_cache: NodeCache::new(NODE_CACHE_CAP),
            epoch: 0,
            seek_stats: SeekStats::default(),
            metrics: TreeMetrics::new(),
        }
    }

    /// Current structural-mutation epoch. Bumped by every insert, delete,
    /// and bulk load; cursors record it at descent time so
    /// [`BTree::reseek`] can detect that a retained path went stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Descent accounting since the last [`BTree::reset_seek_stats`].
    pub fn seek_stats(&self) -> SeekStats {
        self.seek_stats
    }

    /// Zero the descent counters (typically at the start of a query,
    /// alongside `pool_mut().begin_query()`).
    pub fn reset_seek_stats(&mut self) {
        self.seek_stats = SeekStats::default();
    }

    pub(crate) fn seek_stats_mut(&mut self) -> &mut SeekStats {
        &mut self.seek_stats
    }

    /// Cap the decoded-node cache at `cap` entries (second-chance
    /// eviction), evicting down immediately if over. `0` disables caching.
    pub fn set_node_cache_capacity(&mut self, cap: usize) {
        self.node_cache.set_capacity(cap);
    }

    /// Whether `id` currently has a cached decode (test/introspection
    /// hook for eviction behavior).
    pub fn node_cache_contains(&self, id: PageId) -> bool {
        self.node_cache.contains(&id)
    }

    /// Number of entries in the tree.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// The tree's configuration.
    pub fn config(&self) -> &BTreeConfig {
        &self.config
    }

    /// The underlying buffer pool (for statistics).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Mutable access to the buffer pool (e.g. `begin_query`).
    pub fn pool_mut(&mut self) -> &mut BufferPool<S> {
        &mut self.pool
    }

    /// Consume the tree, returning its buffer pool without flushing —
    /// crash-simulation tests use this to drop dirty frames on the floor.
    /// Reconstruct later with [`BTree::open`] and the saved root and len.
    pub fn into_pool(self) -> BufferPool<S> {
        self.pool
    }

    /// Largest `key.len() + value.len()` accepted by [`BTree::insert`].
    ///
    /// A third of a page guarantees a valid split always exists (two
    /// maximal entries per half) while still admitting sizeable inline
    /// values such as the CG-tree's 40-set directory records.
    pub fn max_entry_size(&self) -> usize {
        self.pool.page_size() / 3
    }

    pub(crate) fn set_root_len(&mut self, root: PageId, len: u64) {
        self.root = root;
        self.len = len;
    }

    /// Load a node for reading. The page fetch is always performed (and
    /// counted); decoding is skipped when the cached copy is still valid.
    pub(crate) fn load_cached(&mut self, id: PageId) -> Result<Rc<Node>> {
        let page = self.pool.fetch(id)?;
        if let Some(node) = self.node_cache.get(id) {
            return Ok(node);
        }
        let node = Rc::new(Node::decode(&page.read())?);
        self.node_cache.insert(id, node.clone());
        Ok(node)
    }

    /// Load an owned node for mutation.
    pub(crate) fn load(&mut self, id: PageId) -> Result<Node> {
        let node = self.load_cached(id)?;
        Ok((*node).clone())
    }

    pub(crate) fn store_node(&mut self, id: PageId, node: &Node) -> Result<()> {
        self.node_cache.remove(&id);
        let page = self.pool.fetch(id)?;
        let result = node.encode(&mut page.write(), self.config.front_compression);
        result
    }

    /// Free a page, dropping any cached decode of it.
    pub(crate) fn free_page(&mut self, id: PageId) -> Result<()> {
        self.node_cache.remove(&id);
        self.pool.free(id)
    }

    fn page_size(&self) -> usize {
        self.pool.page_size()
    }

    pub(crate) fn fits(&self, node: &Node) -> bool {
        match self.config.capacity {
            Capacity::Bytes => node.encoded_size(self.config.front_compression) <= self.page_size(),
            Capacity::Entries(m) => {
                node.count() <= m
                    && node.encoded_size(self.config.front_compression) <= self.page_size()
            }
        }
    }

    pub(crate) fn is_underfull_node(&self, node: &Node) -> bool {
        match self.config.capacity {
            Capacity::Bytes => {
                node.encoded_size(self.config.front_compression) < self.page_size() / 4
            }
            Capacity::Entries(_) => node.count() < self.config.min_entries(),
        }
    }

    fn separator(&self, left_max: &[u8], right_min: &[u8]) -> Vec<u8> {
        if self.config.suffix_truncation {
            truncate_separator(left_max, right_min)
        } else {
            right_min.to_vec()
        }
    }

    // ----- lookup -------------------------------------------------------

    /// Look up the value stored under `key`.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut id = self.root;
        loop {
            match &*self.load_cached(id)? {
                Node::Internal(int) => id = int.children[int.route(key)],
                Node::Leaf(leaf) => {
                    return Ok(leaf
                        .entries
                        .binary_search_by(|e| e.key.as_slice().cmp(key))
                        .ok()
                        .map(|i| leaf.entries[i].value.clone()));
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&mut self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    // ----- insert -------------------------------------------------------

    /// Insert `key` → `value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        if key.len() + value.len() > self.max_entry_size() {
            return Err(Error::Corrupt(format!(
                "entry of {} bytes exceeds max entry size {}",
                key.len() + value.len(),
                self.max_entry_size()
            )));
        }
        self.bump_epoch();
        let result = self.insert_rec(self.root, key, value)?;
        let old = match result {
            Ins::Done(old) => old,
            Ins::Split { sep, right, old } => {
                // Grow the tree: new root with the old root and the new
                // right sibling as children.
                let old_root = self.root;
                let (new_root, page) = self.pool.allocate()?;
                self.node_cache.remove(&new_root);
                let node = Node::Internal(InternalNode {
                    seps: vec![sep],
                    children: vec![old_root, right],
                });
                node.encode(&mut page.write(), self.config.front_compression)?;
                drop(page);
                self.root = new_root;
                old
            }
        };
        if old.is_none() {
            self.len += 1;
        }
        Ok(old)
    }

    fn insert_rec(&mut self, id: PageId, key: &[u8], value: &[u8]) -> Result<Ins> {
        match self.load(id)? {
            Node::Leaf(mut leaf) => {
                let old = match leaf.entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(
                        &mut leaf.entries[i].value,
                        value.to_vec(),
                    )),
                    Err(i) => {
                        leaf.entries.insert(
                            i,
                            Entry {
                                key: key.to_vec(),
                                value: value.to_vec(),
                            },
                        );
                        None
                    }
                };
                let node = Node::Leaf(leaf);
                if self.fits(&node) {
                    self.store_node(id, &node)?;
                    return Ok(Ins::Done(old));
                }
                let Node::Leaf(mut leaf) = node else {
                    unreachable!()
                };
                let split_at = self.leaf_split_index(&leaf)?;
                let right_entries = leaf.entries.split_off(split_at);
                let (right_id, _) = self.pool.allocate()?;
                let right = LeafNode {
                    entries: right_entries,
                    next: leaf.next,
                };
                leaf.next = right_id;
                let sep = self.separator(
                    &leaf.entries.last().expect("left non-empty").key,
                    &right.entries[0].key,
                );
                self.store_node(id, &Node::Leaf(leaf))?;
                self.store_node(right_id, &Node::Leaf(right))?;
                self.metrics.splits.inc();
                Ok(Ins::Split {
                    sep,
                    right: right_id,
                    old,
                })
            }
            Node::Internal(mut int) => {
                let ci = int.route(key);
                match self.insert_rec(int.children[ci], key, value)? {
                    Ins::Done(old) => Ok(Ins::Done(old)),
                    Ins::Split { sep, right, old } => {
                        int.seps.insert(ci, sep);
                        int.children.insert(ci + 1, right);
                        let node = Node::Internal(int);
                        if self.fits(&node) {
                            self.store_node(id, &node)?;
                            return Ok(Ins::Done(old));
                        }
                        let Node::Internal(mut int) = node else {
                            unreachable!()
                        };
                        let promote = self.internal_split_index(&int)?;
                        // left keeps seps[..promote], children[..promote+1];
                        // seps[promote] moves up; right gets the rest.
                        let right_seps = int.seps.split_off(promote + 1);
                        let promoted = int.seps.pop().expect("promote index valid");
                        let right_children = int.children.split_off(promote + 1);
                        let (right_id, _) = self.pool.allocate()?;
                        let right = InternalNode {
                            seps: right_seps,
                            children: right_children,
                        };
                        self.store_node(id, &Node::Internal(int))?;
                        self.store_node(right_id, &Node::Internal(right))?;
                        self.metrics.splits.inc();
                        Ok(Ins::Split {
                            sep: promoted,
                            right: right_id,
                            old,
                        })
                    }
                }
            }
        }
    }

    /// Pick the index at which to split an over-full leaf so both halves fit
    /// and are byte-balanced.
    pub(crate) fn leaf_split_index(&self, leaf: &LeafNode) -> Result<usize> {
        let n = leaf.entries.len();
        debug_assert!(n >= 2, "cannot split a leaf with < 2 entries");
        if let Capacity::Entries(_) = self.config.capacity {
            return Ok(n / 2 + (n % 2));
        }
        let keys: Vec<&[u8]> = leaf.entries.iter().map(|e| e.key.as_slice()).collect();
        let vlens: Vec<usize> = leaf.entries.iter().map(|e| e.value.len()).collect();
        let (comp, first) = segment_sizes(
            keys.iter().copied(),
            Some(&vlens),
            self.config.front_compression,
        );
        // prefix[i] = sum of comp[0..i]
        let mut prefix = vec![0usize; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] + comp[i];
        }
        let total_comp = prefix[n];
        let mut best: Option<(usize, usize)> = None; // (max_side, k)
        for k in 1..n {
            // left = header + first[0] + comp[1..k]; right similarly with
            // entry k re-encoded uncompressed as its node's first entry.
            let left_size = LEAF_HEADER + first[0] + (prefix[k] - prefix[1]);
            let right_size = LEAF_HEADER + first[k] + (total_comp - prefix[k + 1]);
            if left_size <= self.page_size() && right_size <= self.page_size() {
                let worst = left_size.max(right_size);
                if best.is_none_or(|(b, _)| worst < b) {
                    best = Some((worst, k));
                }
            }
        }
        best.map(|(_, k)| k).ok_or_else(|| {
            Error::Corrupt("no valid leaf split point: entry too large for page".into())
        })
    }

    /// Pick the promote index for an over-full interior node.
    pub(crate) fn internal_split_index(&self, int: &InternalNode) -> Result<usize> {
        let n = int.seps.len();
        debug_assert!(n >= 3, "cannot split interior with < 3 separators");
        if let Capacity::Entries(_) = self.config.capacity {
            return Ok(n / 2);
        }
        let (comp, first) = segment_sizes(
            int.seps.iter().map(|s| s.as_slice()),
            None,
            self.config.front_compression,
        );
        let mut prefix = vec![0usize; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] + comp[i];
        }
        let total = prefix[n];
        let mut best: Option<(usize, usize)> = None;
        // Promoting index p leaves seps[..p] on the left and seps[p+1..] on
        // the right.
        for p in 1..n - 1 {
            let left_size = INTERIOR_HEADER + first[0] + (prefix[p] - prefix[1]);
            let right_size = INTERIOR_HEADER + first[p + 1] + (total - prefix[p + 2]);
            if left_size <= self.page_size() && right_size <= self.page_size() {
                let worst = left_size.max(right_size);
                if best.is_none_or(|(b, _)| worst < b) {
                    best = Some((worst, p));
                }
            }
        }
        best.map(|(_, p)| p).ok_or_else(|| {
            Error::Corrupt("no valid interior split point: separator too large".into())
        })
    }

    // ----- delete -------------------------------------------------------

    /// Remove `key`, returning its value if it was present.
    pub fn delete(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.bump_epoch();
        let result = self.delete_rec(self.root, key)?;
        let old = match result {
            Del::NotFound => return Ok(None),
            Del::Done(v) | Del::Underflow(v) => v,
        };
        self.len -= 1;
        // Collapse the root if it became a pass-through interior node.
        if let Node::Internal(int) = self.load(self.root)? {
            if int.seps.is_empty() {
                let old_root = self.root;
                self.root = int.children[0];
                self.free_page(old_root)?;
            }
        }
        Ok(Some(old))
    }

    fn delete_rec(&mut self, id: PageId, key: &[u8]) -> Result<Del> {
        match self.load(id)? {
            Node::Leaf(mut leaf) => {
                match leaf.entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
                    Err(_) => Ok(Del::NotFound),
                    Ok(i) => {
                        let old = leaf.entries.remove(i).value;
                        let node = Node::Leaf(leaf);
                        let under = self.is_underfull_node(&node);
                        self.store_node(id, &node)?;
                        Ok(if under {
                            Del::Underflow(old)
                        } else {
                            Del::Done(old)
                        })
                    }
                }
            }
            Node::Internal(mut int) => {
                let ci = int.route(key);
                match self.delete_rec(int.children[ci], key)? {
                    Del::NotFound => Ok(Del::NotFound),
                    Del::Done(v) => Ok(Del::Done(v)),
                    Del::Underflow(v) => {
                        self.rebalance_child(&mut int, ci)?;
                        let node = Node::Internal(int);
                        let under = self.is_underfull_node(&node);
                        self.store_node(id, &node)?;
                        Ok(if under {
                            Del::Underflow(v)
                        } else {
                            Del::Done(v)
                        })
                    }
                }
            }
        }
    }

    /// Fix up an underfull child of `int` at position `ci` by merging with or
    /// redistributing from an adjacent sibling. `int` is mutated in place;
    /// the caller stores it.
    fn rebalance_child(&mut self, int: &mut InternalNode, ci: usize) -> Result<()> {
        if int.children.len() < 2 {
            return Ok(()); // no sibling (root child chain); nothing to do
        }
        // Pair the underfull child with its left sibling when possible so we
        // always merge right-into-left.
        let (li, ri) = if ci > 0 { (ci - 1, ci) } else { (ci, ci + 1) };
        let left_id = int.children[li];
        let right_id = int.children[ri];
        let left = self.load(left_id)?;
        let right = self.load(right_id)?;
        match (left, right) {
            (Node::Leaf(mut l), Node::Leaf(r)) => {
                let merged_next = r.next;
                l.entries.extend(r.entries);
                let combined = Node::Leaf(LeafNode {
                    entries: std::mem::take(&mut l.entries),
                    next: merged_next,
                });
                if self.fits(&combined) {
                    self.store_node(left_id, &combined)?;
                    self.free_page(right_id)?;
                    int.seps.remove(li);
                    int.children.remove(ri);
                    self.metrics.merges.inc();
                } else {
                    let Node::Leaf(mut combined) = combined else {
                        unreachable!()
                    };
                    let k = self.leaf_split_index(&combined)?;
                    let right_entries = combined.entries.split_off(k);
                    let new_right = LeafNode {
                        entries: right_entries,
                        next: combined.next,
                    };
                    combined.next = right_id;
                    let sep = self.separator(
                        &combined.entries.last().expect("non-empty").key,
                        &new_right.entries[0].key,
                    );
                    self.store_node(left_id, &Node::Leaf(combined))?;
                    self.store_node(right_id, &Node::Leaf(new_right))?;
                    int.seps[li] = sep;
                }
            }
            (Node::Internal(mut l), Node::Internal(r)) => {
                // Pull the parent separator down between the two sep lists.
                let parent_sep = int.seps[li].clone();
                l.seps.push(parent_sep);
                l.seps.extend(r.seps);
                l.children.extend(r.children);
                let combined = Node::Internal(l);
                if self.fits(&combined) {
                    self.store_node(left_id, &combined)?;
                    self.free_page(right_id)?;
                    int.seps.remove(li);
                    int.children.remove(ri);
                    self.metrics.merges.inc();
                } else {
                    let Node::Internal(mut combined) = combined else {
                        unreachable!()
                    };
                    let p = self.internal_split_index(&combined)?;
                    let right_seps = combined.seps.split_off(p + 1);
                    let promoted = combined.seps.pop().expect("promote valid");
                    let right_children = combined.children.split_off(p + 1);
                    self.store_node(left_id, &Node::Internal(combined))?;
                    self.store_node(
                        right_id,
                        &Node::Internal(InternalNode {
                            seps: right_seps,
                            children: right_children,
                        }),
                    )?;
                    int.seps[li] = promoted;
                }
            }
            _ => return Err(Error::Corrupt("sibling nodes at different levels".into())),
        }
        Ok(())
    }
}
