//! The B+-tree proper: create, get, insert, delete with rebalancing — plus
//! the shared-state layer that lets many reader threads run against
//! published snapshots while a single writer mutates.
//!
//! # Concurrency model (DESIGN.md §12)
//!
//! A tree is split into a **writer handle** ([`BTree`], `&mut` for
//! mutations) and any number of **reader handles** ([`TreeReader`],
//! `Clone + Send`). The writer mutates pages in place and, at points of its
//! choosing, [`BTree::publish`]es its root/len/epoch; readers open
//! [`TreeSnapshot`]s of the last published state and scan them through a
//! [`crate::ReadView`] without any coordination with the writer beyond a
//! per-page version lookup.
//!
//! Page ids stay stable across mutations (no copy-on-write page chains — the
//! leaf `next` pointers survive). Instead, the first time a *published* page
//! is rewritten or freed after a publish, its decoded pre-image is preserved
//! in a [`SnapshotTracker`] version store tagged with the epoch it was valid
//! through. A snapshot reader at epoch `e` resolves a page by taking the
//! oldest preserved version with `valid_through >= e`, else reading the live
//! frame — and then re-checking the version store, which closes the race
//! with a writer that preserved-and-mutated in between (preservation
//! happens-before mutation, so a miss on the re-check proves the bytes read
//! predate any mutation).
//!
//! Frees of published pages are deferred: the page id is queued with the
//! epoch it was valid through and only returned to the store once no active
//! snapshot can reach it (reclamation runs at publish). Pages allocated
//! since the last publish are invisible to every snapshot and are freed
//! immediately.
//!
//! Snapshot mode is **opt-in** ([`BTree::enable_snapshots`]): preservation
//! must be unconditional once readers may exist (a snapshot can be opened
//! at the current published epoch at any time), so single-threaded users —
//! the baselines, most tests — pay nothing.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use pagestore::{BufferPool, Error, PageId, PageRef, PageStore, Result};

use crate::codec::truncate_separator;
use crate::config::{BTreeConfig, Capacity};
use crate::node::{
    segment_sizes, Entry, InternalNode, LeafNode, Node, INTERIOR_HEADER, LEAF_HEADER,
};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Registry handles, resolved once per thread so hot-path increments are a
/// single `Cell` bump (catalog in DESIGN.md §9). Thread-local because the
/// telemetry registry itself is: each worker accumulates its own counters
/// and the coordinator merges them (`telemetry::absorb`).
pub(crate) struct TreeMetrics {
    pub(crate) seek_descents: telemetry::Counter,
    pub(crate) seek_nodes: telemetry::Counter,
    /// Reseeks by resolution level: within-leaf, LCA re-descent, full seek.
    pub(crate) reseek_leaf: telemetry::Counter,
    pub(crate) reseek_lca: telemetry::Counter,
    pub(crate) reseek_full: telemetry::Counter,
    pub(crate) splits: telemetry::Counter,
    pub(crate) merges: telemetry::Counter,
    /// Snapshot reads served from the version store instead of live frames.
    pub(crate) version_reads: telemetry::Counter,
    /// Pre-images preserved into the version store.
    pub(crate) preserved: telemetry::Counter,
    /// Frees deferred because a snapshot may still reach the page.
    pub(crate) deferred_frees: telemetry::Counter,
}

impl TreeMetrics {
    fn new() -> Self {
        TreeMetrics {
            seek_descents: telemetry::counter("btree.seek.descents"),
            seek_nodes: telemetry::counter("btree.seek.nodes_fetched"),
            reseek_leaf: telemetry::counter("btree.reseek.leaf"),
            reseek_lca: telemetry::counter("btree.reseek.lca"),
            reseek_full: telemetry::counter("btree.reseek.full"),
            splits: telemetry::counter("btree.splits"),
            merges: telemetry::counter("btree.merges"),
            version_reads: telemetry::counter("btree.snapshot.version_reads"),
            preserved: telemetry::counter("btree.snapshot.preserved"),
            deferred_frees: telemetry::counter("btree.snapshot.deferred_frees"),
        }
    }
}

thread_local! {
    static TREE_METRICS: TreeMetrics = TreeMetrics::new();
}

pub(crate) fn metrics<R>(f: impl FnOnce(&TreeMetrics) -> R) -> R {
    TREE_METRICS.with(f)
}

/// Decode a page into a shared node via the frame-embedded decode cache.
/// The page fetch that produced `page` is what gets counted; decoding is
/// skipped whenever the frame already carries a decode of the current bytes.
pub(crate) fn decode_node(page: &PageRef) -> Result<Arc<Node>> {
    page.get_or_decode(Node::decode)
}

/// The root/len/epoch triple visible to readers, swapped atomically by
/// [`BTree::publish`].
#[derive(Clone, Copy)]
pub(crate) struct Published {
    pub(crate) root: PageId,
    pub(crate) len: u64,
    pub(crate) epoch: u64,
}

/// One preserved pre-image: the decoded node as it stood at every publish
/// up to and including epoch `valid_through`.
struct VersionedNode {
    valid_through: u64,
    node: Arc<Node>,
}

#[derive(Default)]
struct TrackInner {
    /// Active snapshot refcounts by epoch (BTreeMap so the minimum — the
    /// reclamation horizon — is O(1)).
    active: BTreeMap<u64, usize>,
    /// Preserved pre-images, per page in ascending `valid_through` order.
    versions: HashMap<PageId, Vec<VersionedNode>>,
    /// Freed pages still reachable from snapshots at epoch <= `.0`.
    pending_free: Vec<(u64, PageId)>,
}

/// Snapshot bookkeeping shared between the writer and all readers: active
/// snapshot epochs, preserved node versions, and the deferred free list.
pub struct SnapshotTracker {
    inner: Mutex<TrackInner>,
    /// Lock-free fast path: readers skip the mutex entirely while the
    /// version store is empty (the common case — an idle or absent writer).
    nversions: AtomicUsize,
    enabled: AtomicBool,
}

impl SnapshotTracker {
    fn new() -> Self {
        SnapshotTracker {
            inner: Mutex::new(TrackInner::default()),
            nversions: AtomicUsize::new(0),
            enabled: AtomicBool::new(false),
        }
    }

    fn register(&self, epoch: u64) {
        *lock(&self.inner).active.entry(epoch).or_insert(0) += 1;
    }

    fn unregister(&self, epoch: u64) {
        let mut inner = lock(&self.inner);
        if let Some(n) = inner.active.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                inner.active.remove(&epoch);
            }
        }
    }

    fn preserve(&self, id: PageId, valid_through: u64, node: Arc<Node>) {
        let mut inner = lock(&self.inner);
        let versions = inner.versions.entry(id).or_default();
        // Idempotence across publish intervals: at most one version per
        // (page, epoch); epochs only grow, so ascending order is invariant.
        if versions
            .last()
            .is_none_or(|v| v.valid_through < valid_through)
        {
            versions.push(VersionedNode {
                valid_through,
                node,
            });
            self.nversions.fetch_add(1, Ordering::Release);
        }
    }

    fn defer_free(&self, id: PageId, valid_through: u64) {
        lock(&self.inner).pending_free.push((valid_through, id));
    }

    /// The preserved version of `id` visible to a snapshot at `epoch`, if
    /// the live frame is too new for it.
    pub(crate) fn lookup(&self, id: PageId, epoch: u64) -> Option<Arc<Node>> {
        if self.nversions.load(Ordering::Acquire) == 0 {
            return None;
        }
        let inner = lock(&self.inner);
        let versions = inner.versions.get(&id)?;
        versions
            .iter()
            .find(|v| v.valid_through >= epoch)
            .map(|v| v.node.clone())
    }

    /// Drop versions no active snapshot can need and drain the deferred
    /// frees that are past the reclamation horizon. The caller (the writer,
    /// at publish) frees the returned pages outside the tracker mutex.
    ///
    /// Retention is exact, not horizon-based: a snapshot at epoch `e`
    /// resolves a page to its first version with `valid_through >= e`, so a
    /// version is needed only when some *active* epoch falls in the
    /// half-open interval `(previous version's valid_through, its own
    /// valid_through]`. A long-lived snapshot therefore pins at most one
    /// version per page it can reach — not one per publish interval it
    /// survives — which keeps a server reader held across many writer
    /// epochs at O(pages) footprint instead of O(epochs).
    fn collect_reclaimable(&self) -> Vec<PageId> {
        use std::ops::Bound::{Excluded, Included, Unbounded};
        let mut inner = lock(&self.inner);
        let TrackInner {
            active,
            versions,
            pending_free,
        } = &mut *inner;
        versions.retain(|_, versions| {
            // `prev` tracks the *original* predecessor bound: dropping an
            // unneeded version never widens a survivor's interval, so the
            // exactness argument above stays valid case by case.
            let mut prev: Option<u64> = None;
            versions.retain(|v| {
                let lo = prev;
                prev = Some(v.valid_through);
                match lo {
                    None => active.range(..=v.valid_through).next().is_some(),
                    Some(lo) => active
                        .range((Excluded(lo), Included(v.valid_through)))
                        .next()
                        .is_some(),
                }
            });
            !versions.is_empty()
        });
        let remaining: usize = versions.values().map(Vec::len).sum();
        self.nversions.store(remaining, Ordering::Release);
        let mut freed = Vec::new();
        pending_free.retain(|(valid_through, id)| {
            let reachable = active
                .range((Unbounded, Included(*valid_through)))
                .next()
                .is_some();
            if !reachable {
                freed.push(*id);
            }
            reachable
        });
        freed
    }

    /// Number of currently open snapshots (test/diagnostic hook).
    pub fn active_snapshots(&self) -> usize {
        lock(&self.inner).active.values().sum()
    }

    /// Number of preserved node versions (test/diagnostic hook).
    pub fn version_count(&self) -> usize {
        self.nversions.load(Ordering::Acquire)
    }

    /// Number of deferred (not yet reclaimed) page frees (test hook).
    pub fn pending_frees(&self) -> usize {
        lock(&self.inner).pending_free.len()
    }
}

/// State shared by the writer and every reader handle.
pub(crate) struct TreeShared<S: PageStore> {
    pub(crate) pool: Arc<BufferPool<S>>,
    pub(crate) published: RwLock<Published>,
    pub(crate) tracker: Arc<SnapshotTracker>,
    pub(crate) config: BTreeConfig,
}

/// A cloneable, `Send` handle for opening read snapshots of a tree whose
/// writer lives on another thread. Obtained from [`BTree::reader`]; requires
/// [`BTree::enable_snapshots`] to have been called.
pub struct TreeReader<S: PageStore> {
    pub(crate) shared: Arc<TreeShared<S>>,
}

impl<S: PageStore> Clone for TreeReader<S> {
    fn clone(&self) -> Self {
        TreeReader {
            shared: self.shared.clone(),
        }
    }
}

impl<S: PageStore> TreeReader<S> {
    /// Open a snapshot of the last published tree state. The snapshot pins
    /// its epoch: pages it can reach are not reclaimed until it drops.
    ///
    /// # Panics
    /// Panics if the writer never called [`BTree::enable_snapshots`] —
    /// without preservation a snapshot would silently read torn state.
    pub fn snapshot(&self) -> TreeSnapshot {
        let tracker = &self.shared.tracker;
        assert!(
            tracker.enabled.load(Ordering::Acquire),
            "TreeReader::snapshot on a tree without enable_snapshots()"
        );
        // Register under the published read lock: publish() cannot swap in
        // a new epoch (and prune ours) between the read and the register.
        let p = self
            .shared
            .published
            .read()
            .unwrap_or_else(|e| e.into_inner());
        tracker.register(p.epoch);
        TreeSnapshot {
            root: p.root,
            len: p.len,
            guard: SnapGuard {
                tracker: tracker.clone(),
                epoch: p.epoch,
            },
        }
    }

    /// The buffer pool under the tree (statistics, `begin_query`).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.shared.pool
    }

    /// The tree's configuration.
    pub fn config(&self) -> &BTreeConfig {
        &self.shared.config
    }

    /// The snapshot tracker (diagnostics).
    pub fn tracker(&self) -> &SnapshotTracker {
        &self.shared.tracker
    }
}

/// RAII registration of one snapshot epoch in the tracker.
struct SnapGuard {
    tracker: Arc<SnapshotTracker>,
    epoch: u64,
}

impl Drop for SnapGuard {
    fn drop(&mut self) {
        self.tracker.unregister(self.epoch);
    }
}

/// A consistent read-only view of the tree as of its last publish. Holding
/// a snapshot keeps every page it can reach alive; drop it promptly once
/// the scan is done. Read through [`TreeReader::read`].
pub struct TreeSnapshot {
    pub(crate) root: PageId,
    pub(crate) len: u64,
    guard: SnapGuard,
}

impl TreeSnapshot {
    /// Number of entries at the snapshot's epoch.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root page id at the snapshot's epoch.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// The mutation epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.guard.epoch
    }
}

pub(crate) enum Ins {
    Done(Option<Vec<u8>>),
    Split {
        sep: Vec<u8>,
        right: PageId,
        old: Option<Vec<u8>>,
    },
}

enum Del {
    NotFound,
    Done(Vec<u8>),
    Underflow(Vec<u8>),
}

/// A B+-tree over a buffer pool: the single-writer handle. See the crate
/// docs for the feature set and the module docs for the concurrency model.
pub struct BTree<S: PageStore> {
    pub(crate) shared: Arc<TreeShared<S>>,
    pub(crate) config: BTreeConfig,
    pub(crate) root: PageId,
    len: u64,
    /// Structural mutation counter; retained cursor paths are valid only
    /// while this is unchanged (see `ReadView::reseek`), and publishes
    /// stamp it into the snapshot state.
    epoch: u64,
    /// `epoch` as of the last [`BTree::publish`] — the tag preserved
    /// pre-images carry.
    last_published: u64,
    /// Pages allocated since the last publish: invisible to every
    /// snapshot, so they are mutated and freed without preservation.
    fresh: HashSet<PageId>,
    /// Pages whose pre-image was already preserved this publish interval
    /// (at most one preservation per page per interval).
    preserved: HashSet<PageId>,
    snapshots: bool,
}

impl<S: PageStore> BTree<S> {
    fn attach(pool: BufferPool<S>, config: BTreeConfig, root: PageId, len: u64) -> Self {
        let shared = Arc::new(TreeShared {
            pool: Arc::new(pool),
            published: RwLock::new(Published {
                root,
                len,
                epoch: 0,
            }),
            tracker: Arc::new(SnapshotTracker::new()),
            config,
        });
        BTree {
            shared,
            config,
            root,
            len,
            epoch: 0,
            last_published: 0,
            fresh: HashSet::new(),
            preserved: HashSet::new(),
            snapshots: false,
        }
    }

    /// Create an empty tree in `pool`.
    pub fn create(pool: BufferPool<S>, config: BTreeConfig) -> Result<Self> {
        let (root, page) = pool.allocate()?;
        Node::empty_leaf().encode(&mut page.write(), config.front_compression)?;
        drop(page);
        Ok(Self::attach(pool, config, root, 0))
    }

    /// Re-attach to an existing tree rooted at `root` holding `len` entries
    /// (the caller is responsible for persisting those two facts).
    pub fn open(pool: BufferPool<S>, config: BTreeConfig, root: PageId, len: u64) -> Self {
        Self::attach(pool, config, root, len)
    }

    /// Turn on snapshot preservation, publish the current state, and allow
    /// [`TreeReader::snapshot`]. Before this call the tree does zero
    /// snapshot bookkeeping; after it, every rewrite of a published page
    /// preserves its pre-image (a snapshot at the current published epoch
    /// may be opened at any time).
    pub fn enable_snapshots(&mut self) {
        self.snapshots = true;
        self.shared.tracker.enabled.store(true, Ordering::Release);
        self.publish()
            .expect("publish cannot fail with no pending frees");
    }

    /// Whether snapshot preservation is on.
    pub fn snapshots_enabled(&self) -> bool {
        self.snapshots
    }

    /// Publish the writer's current root/len/epoch for readers: snapshots
    /// opened after this call observe everything up to here. Also prunes
    /// version-store entries no snapshot can need and reclaims deferred
    /// frees past the reclamation horizon.
    pub fn publish(&mut self) -> Result<()> {
        {
            let mut p = self
                .shared
                .published
                .write()
                .unwrap_or_else(|e| e.into_inner());
            *p = Published {
                root: self.root,
                len: self.len,
                epoch: self.epoch,
            };
        }
        self.last_published = self.epoch;
        self.fresh.clear();
        self.preserved.clear();
        for id in self.shared.tracker.collect_reclaimable() {
            self.shared.pool.free(id)?;
        }
        Ok(())
    }

    /// A cloneable, `Send` handle for reader threads. Readers only see
    /// published state — call [`BTree::publish`] after mutating.
    pub fn reader(&self) -> TreeReader<S> {
        TreeReader {
            shared: self.shared.clone(),
        }
    }

    /// The snapshot tracker (diagnostics and tests).
    pub fn tracker(&self) -> &SnapshotTracker {
        &self.shared.tracker
    }

    /// Current structural-mutation epoch. Bumped by every insert, delete,
    /// and bulk load; cursors record it at descent time so `reseek` can
    /// detect that a retained path went stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Number of entries in the tree.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// The tree's configuration.
    pub fn config(&self) -> &BTreeConfig {
        &self.config
    }

    /// The underlying buffer pool (statistics, `begin_query`, flushes —
    /// the pool API is `&self` throughout).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.shared.pool
    }

    /// A shared handle to the buffer pool, e.g. for a background
    /// checkpointer that must outlive this borrow.
    pub fn pool_arc(&self) -> Arc<BufferPool<S>> {
        self.shared.pool.clone()
    }

    /// Consume the tree, returning its buffer pool without flushing —
    /// crash-simulation tests use this to drop dirty frames on the floor.
    /// Reconstruct later with [`BTree::open`] and the saved root and len.
    ///
    /// # Panics
    /// Panics if reader handles or snapshots are still alive.
    pub fn into_pool(self) -> BufferPool<S> {
        let shared = match Arc::try_unwrap(self.shared) {
            Ok(s) => s,
            Err(_) => panic!("BTree::into_pool with live reader handles"),
        };
        match Arc::try_unwrap(shared.pool) {
            Ok(p) => p,
            Err(_) => panic!("BTree::into_pool with live pool handles"),
        }
    }

    /// Largest `key.len() + value.len()` accepted by [`BTree::insert`].
    ///
    /// A third of a page guarantees a valid split always exists (two
    /// maximal entries per half) while still admitting sizeable inline
    /// values such as the CG-tree's 40-set directory records.
    pub fn max_entry_size(&self) -> usize {
        self.pool().page_size() / 3
    }

    pub(crate) fn set_root_len(&mut self, root: PageId, len: u64) {
        self.root = root;
        self.len = len;
    }

    /// Load a node for reading. The page fetch is always performed (and
    /// counted); decoding is skipped when the frame's cached decode is
    /// still valid.
    pub(crate) fn load_cached(&self, id: PageId) -> Result<Arc<Node>> {
        let page = self.shared.pool.fetch(id)?;
        decode_node(&page)
    }

    /// Load an owned node for mutation.
    pub(crate) fn load(&self, id: PageId) -> Result<Node> {
        Ok((*self.load_cached(id)?).clone())
    }

    /// Overwrite `id` with `node`, preserving the pre-image into the
    /// version store if this is the first write to a published page since
    /// the last publish.
    pub(crate) fn store_node(&mut self, id: PageId, node: &Node) -> Result<()> {
        let page = self.shared.pool.fetch(id)?;
        if self.snapshots && !self.fresh.contains(&id) && !self.preserved.contains(&id) {
            let old = decode_node(&page)?;
            self.shared.tracker.preserve(id, self.last_published, old);
            self.preserved.insert(id);
            metrics(|m| m.preserved.inc());
        }
        let mut bytes = page.write();
        node.encode(&mut bytes, self.config.front_compression)
    }

    /// Free a page. Published pages are preserved and their free deferred
    /// until no snapshot can reach them; pages allocated since the last
    /// publish are freed immediately (no snapshot ever saw them).
    pub(crate) fn free_page(&mut self, id: PageId) -> Result<()> {
        if self.snapshots && !self.fresh.contains(&id) {
            if !self.preserved.contains(&id) {
                let page = self.shared.pool.fetch(id)?;
                let old = decode_node(&page)?;
                self.shared.tracker.preserve(id, self.last_published, old);
                self.preserved.insert(id);
                metrics(|m| m.preserved.inc());
            }
            self.shared.tracker.defer_free(id, self.last_published);
            metrics(|m| m.deferred_frees.inc());
            return Ok(());
        }
        self.fresh.remove(&id);
        self.shared.pool.free(id)
    }

    /// Allocate a page, recording it as invisible to snapshots.
    pub(crate) fn allocate_page(&mut self) -> Result<(PageId, PageRef)> {
        let (id, page) = self.shared.pool.allocate()?;
        if self.snapshots {
            self.fresh.insert(id);
        }
        Ok((id, page))
    }

    fn page_size(&self) -> usize {
        self.pool().page_size()
    }

    pub(crate) fn fits(&self, node: &Node) -> bool {
        match self.config.capacity {
            Capacity::Bytes => node.encoded_size(self.config.front_compression) <= self.page_size(),
            Capacity::Entries(m) => {
                node.count() <= m
                    && node.encoded_size(self.config.front_compression) <= self.page_size()
            }
        }
    }

    pub(crate) fn is_underfull_node(&self, node: &Node) -> bool {
        match self.config.capacity {
            Capacity::Bytes => {
                node.encoded_size(self.config.front_compression) < self.page_size() / 4
            }
            Capacity::Entries(_) => node.count() < self.config.min_entries(),
        }
    }

    fn separator(&self, left_max: &[u8], right_min: &[u8]) -> Vec<u8> {
        if self.config.suffix_truncation {
            truncate_separator(left_max, right_min)
        } else {
            right_min.to_vec()
        }
    }

    // ----- insert -------------------------------------------------------

    /// Insert `key` → `value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        if key.len() + value.len() > self.max_entry_size() {
            return Err(Error::Corrupt(format!(
                "entry of {} bytes exceeds max entry size {}",
                key.len() + value.len(),
                self.max_entry_size()
            )));
        }
        self.bump_epoch();
        let result = self.insert_rec(self.root, key, value)?;
        let old = match result {
            Ins::Done(old) => old,
            Ins::Split { sep, right, old } => {
                // Grow the tree: new root with the old root and the new
                // right sibling as children.
                let old_root = self.root;
                let (new_root, page) = self.allocate_page()?;
                let node = Node::Internal(InternalNode {
                    seps: vec![sep],
                    children: vec![old_root, right],
                });
                node.encode(&mut page.write(), self.config.front_compression)?;
                drop(page);
                self.root = new_root;
                old
            }
        };
        if old.is_none() {
            self.len += 1;
        }
        Ok(old)
    }

    fn insert_rec(&mut self, id: PageId, key: &[u8], value: &[u8]) -> Result<Ins> {
        match self.load(id)? {
            Node::Leaf(mut leaf) => {
                let old = match leaf.entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(
                        &mut leaf.entries[i].value,
                        value.to_vec(),
                    )),
                    Err(i) => {
                        leaf.entries.insert(
                            i,
                            Entry {
                                key: key.to_vec(),
                                value: value.to_vec(),
                            },
                        );
                        None
                    }
                };
                let node = Node::Leaf(leaf);
                if self.fits(&node) {
                    self.store_node(id, &node)?;
                    return Ok(Ins::Done(old));
                }
                let Node::Leaf(mut leaf) = node else {
                    unreachable!()
                };
                let split_at = self.leaf_split_index(&leaf)?;
                let right_entries = leaf.entries.split_off(split_at);
                let (right_id, _) = self.allocate_page()?;
                let right = LeafNode {
                    entries: right_entries,
                    next: leaf.next,
                };
                leaf.next = right_id;
                let sep = self.separator(
                    &leaf.entries.last().expect("left non-empty").key,
                    &right.entries[0].key,
                );
                self.store_node(id, &Node::Leaf(leaf))?;
                self.store_node(right_id, &Node::Leaf(right))?;
                metrics(|m| m.splits.inc());
                Ok(Ins::Split {
                    sep,
                    right: right_id,
                    old,
                })
            }
            Node::Internal(mut int) => {
                let ci = int.route(key);
                match self.insert_rec(int.children[ci], key, value)? {
                    Ins::Done(old) => Ok(Ins::Done(old)),
                    Ins::Split { sep, right, old } => {
                        int.seps.insert(ci, sep);
                        int.children.insert(ci + 1, right);
                        let node = Node::Internal(int);
                        if self.fits(&node) {
                            self.store_node(id, &node)?;
                            return Ok(Ins::Done(old));
                        }
                        let Node::Internal(mut int) = node else {
                            unreachable!()
                        };
                        let promote = self.internal_split_index(&int)?;
                        // left keeps seps[..promote], children[..promote+1];
                        // seps[promote] moves up; right gets the rest.
                        let right_seps = int.seps.split_off(promote + 1);
                        let promoted = int.seps.pop().expect("promote index valid");
                        let right_children = int.children.split_off(promote + 1);
                        let (right_id, _) = self.allocate_page()?;
                        let right = InternalNode {
                            seps: right_seps,
                            children: right_children,
                        };
                        self.store_node(id, &Node::Internal(int))?;
                        self.store_node(right_id, &Node::Internal(right))?;
                        metrics(|m| m.splits.inc());
                        Ok(Ins::Split {
                            sep: promoted,
                            right: right_id,
                            old,
                        })
                    }
                }
            }
        }
    }

    /// Pick the index at which to split an over-full leaf so both halves fit
    /// and are byte-balanced.
    pub(crate) fn leaf_split_index(&self, leaf: &LeafNode) -> Result<usize> {
        let n = leaf.entries.len();
        debug_assert!(n >= 2, "cannot split a leaf with < 2 entries");
        if let Capacity::Entries(_) = self.config.capacity {
            return Ok(n / 2 + (n % 2));
        }
        let keys: Vec<&[u8]> = leaf.entries.iter().map(|e| e.key.as_slice()).collect();
        let vlens: Vec<usize> = leaf.entries.iter().map(|e| e.value.len()).collect();
        let (comp, first) = segment_sizes(
            keys.iter().copied(),
            Some(&vlens),
            self.config.front_compression,
        );
        // prefix[i] = sum of comp[0..i]
        let mut prefix = vec![0usize; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] + comp[i];
        }
        let total_comp = prefix[n];
        let mut best: Option<(usize, usize)> = None; // (max_side, k)
        for k in 1..n {
            // left = header + first[0] + comp[1..k]; right similarly with
            // entry k re-encoded uncompressed as its node's first entry.
            let left_size = LEAF_HEADER + first[0] + (prefix[k] - prefix[1]);
            let right_size = LEAF_HEADER + first[k] + (total_comp - prefix[k + 1]);
            if left_size <= self.page_size() && right_size <= self.page_size() {
                let worst = left_size.max(right_size);
                if best.is_none_or(|(b, _)| worst < b) {
                    best = Some((worst, k));
                }
            }
        }
        best.map(|(_, k)| k).ok_or_else(|| {
            Error::Corrupt("no valid leaf split point: entry too large for page".into())
        })
    }

    /// Pick the promote index for an over-full interior node.
    pub(crate) fn internal_split_index(&self, int: &InternalNode) -> Result<usize> {
        let n = int.seps.len();
        debug_assert!(n >= 3, "cannot split interior with < 3 separators");
        if let Capacity::Entries(_) = self.config.capacity {
            return Ok(n / 2);
        }
        let (comp, first) = segment_sizes(
            int.seps.iter().map(|s| s.as_slice()),
            None,
            self.config.front_compression,
        );
        let mut prefix = vec![0usize; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] + comp[i];
        }
        let total = prefix[n];
        let mut best: Option<(usize, usize)> = None;
        // Promoting index p leaves seps[..p] on the left and seps[p+1..] on
        // the right.
        for p in 1..n - 1 {
            let left_size = INTERIOR_HEADER + first[0] + (prefix[p] - prefix[1]);
            let right_size = INTERIOR_HEADER + first[p + 1] + (total - prefix[p + 2]);
            if left_size <= self.page_size() && right_size <= self.page_size() {
                let worst = left_size.max(right_size);
                if best.is_none_or(|(b, _)| worst < b) {
                    best = Some((worst, p));
                }
            }
        }
        best.map(|(_, p)| p).ok_or_else(|| {
            Error::Corrupt("no valid interior split point: separator too large".into())
        })
    }

    // ----- delete -------------------------------------------------------

    /// Remove `key`, returning its value if it was present.
    pub fn delete(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.bump_epoch();
        let result = self.delete_rec(self.root, key)?;
        let old = match result {
            Del::NotFound => return Ok(None),
            Del::Done(v) | Del::Underflow(v) => v,
        };
        self.len -= 1;
        // Collapse the root if it became a pass-through interior node.
        if let Node::Internal(int) = self.load(self.root)? {
            if int.seps.is_empty() {
                let old_root = self.root;
                self.root = int.children[0];
                self.free_page(old_root)?;
            }
        }
        Ok(Some(old))
    }

    fn delete_rec(&mut self, id: PageId, key: &[u8]) -> Result<Del> {
        match self.load(id)? {
            Node::Leaf(mut leaf) => {
                match leaf.entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
                    Err(_) => Ok(Del::NotFound),
                    Ok(i) => {
                        let old = leaf.entries.remove(i).value;
                        let node = Node::Leaf(leaf);
                        let under = self.is_underfull_node(&node);
                        self.store_node(id, &node)?;
                        Ok(if under {
                            Del::Underflow(old)
                        } else {
                            Del::Done(old)
                        })
                    }
                }
            }
            Node::Internal(mut int) => {
                let ci = int.route(key);
                match self.delete_rec(int.children[ci], key)? {
                    Del::NotFound => Ok(Del::NotFound),
                    Del::Done(v) => Ok(Del::Done(v)),
                    Del::Underflow(v) => {
                        self.rebalance_child(&mut int, ci)?;
                        let node = Node::Internal(int);
                        let under = self.is_underfull_node(&node);
                        self.store_node(id, &node)?;
                        Ok(if under {
                            Del::Underflow(v)
                        } else {
                            Del::Done(v)
                        })
                    }
                }
            }
        }
    }

    /// Fix up an underfull child of `int` at position `ci` by merging with or
    /// redistributing from an adjacent sibling. `int` is mutated in place;
    /// the caller stores it.
    fn rebalance_child(&mut self, int: &mut InternalNode, ci: usize) -> Result<()> {
        if int.children.len() < 2 {
            return Ok(()); // no sibling (root child chain); nothing to do
        }
        // Pair the underfull child with its left sibling when possible so we
        // always merge right-into-left.
        let (li, ri) = if ci > 0 { (ci - 1, ci) } else { (ci, ci + 1) };
        let left_id = int.children[li];
        let right_id = int.children[ri];
        let left = self.load(left_id)?;
        let right = self.load(right_id)?;
        match (left, right) {
            (Node::Leaf(mut l), Node::Leaf(r)) => {
                let merged_next = r.next;
                l.entries.extend(r.entries);
                let combined = Node::Leaf(LeafNode {
                    entries: std::mem::take(&mut l.entries),
                    next: merged_next,
                });
                if self.fits(&combined) {
                    self.store_node(left_id, &combined)?;
                    self.free_page(right_id)?;
                    int.seps.remove(li);
                    int.children.remove(ri);
                    metrics(|m| m.merges.inc());
                } else {
                    let Node::Leaf(mut combined) = combined else {
                        unreachable!()
                    };
                    let k = self.leaf_split_index(&combined)?;
                    let right_entries = combined.entries.split_off(k);
                    let new_right = LeafNode {
                        entries: right_entries,
                        next: combined.next,
                    };
                    combined.next = right_id;
                    let sep = self.separator(
                        &combined.entries.last().expect("non-empty").key,
                        &new_right.entries[0].key,
                    );
                    self.store_node(left_id, &Node::Leaf(combined))?;
                    self.store_node(right_id, &Node::Leaf(new_right))?;
                    int.seps[li] = sep;
                }
            }
            (Node::Internal(mut l), Node::Internal(r)) => {
                // Pull the parent separator down between the two sep lists.
                let parent_sep = int.seps[li].clone();
                l.seps.push(parent_sep);
                l.seps.extend(r.seps);
                l.children.extend(r.children);
                let combined = Node::Internal(l);
                if self.fits(&combined) {
                    self.store_node(left_id, &combined)?;
                    self.free_page(right_id)?;
                    int.seps.remove(li);
                    int.children.remove(ri);
                    metrics(|m| m.merges.inc());
                } else {
                    let Node::Internal(mut combined) = combined else {
                        unreachable!()
                    };
                    let p = self.internal_split_index(&combined)?;
                    let right_seps = combined.seps.split_off(p + 1);
                    let promoted = combined.seps.pop().expect("promote valid");
                    let right_children = combined.children.split_off(p + 1);
                    self.store_node(left_id, &Node::Internal(combined))?;
                    self.store_node(
                        right_id,
                        &Node::Internal(InternalNode {
                            seps: right_seps,
                            children: right_children,
                        }),
                    )?;
                    int.seps[li] = promoted;
                }
            }
            _ => return Err(Error::Corrupt("sibling nodes at different levels".into())),
        }
        Ok(())
    }
}
