//! Forward cursors over the leaf level, with hierarchical re-seeking.
//!
//! A [`Cursor`] holds the decoded node of its current leaf (shared with the
//! tree's decode cache), so stepping within a leaf costs no page fetches;
//! moving to the next leaf goes through the buffer pool and is accounted
//! normally.
//!
//! Beyond the leaf, a cursor *retains its descent path*: for every interior
//! node between the root and the leaf it keeps the decoded node plus the
//! separator bounds of the subtree it descended into. [`BTree::reseek`]
//! exploits this for the skip-seeks of the paper's parallel retrieval
//! algorithm (Algorithm 1): instead of paying a full root-to-leaf descent
//! per skip, it
//!
//! 1. resolves the target *inside the current leaf* when the leaf's fence
//!    interval covers it (zero page fetches, zero allocations),
//! 2. otherwise walks *up* the retained path to the lowest common ancestor
//!    whose key range covers the target and re-descends from there,
//!    fetching only the nodes below the LCA (the retained ancestors are
//!    not re-fetched, exactly like the cached leaf is not re-fetched when
//!    stepping within it),
//! 3. falls back to a fresh root descent when the cursor was invalidated
//!    by a tree mutation (detected through the tree's epoch counter).
//!
//! Because skip targets and ranges never need owned key bytes, the scan
//! hot path reads entries through [`EntryRef`] — a borrowed view into the
//! shared decoded leaf — instead of cloning every key and value it
//! examines.

use std::rc::Rc;

use pagestore::{PageId, PageStore, Result};

use crate::node::Node;
use crate::tree::BTree;

/// One retained level of a cursor's descent path: an interior node plus
/// the key range its subtree covers (`lo` inclusive, `hi` exclusive;
/// `None` = unbounded).
struct PathLevel {
    id: PageId,
    node: Rc<Node>,
    lo: Vec<u8>,
    hi: Option<Vec<u8>>,
}

impl PathLevel {
    fn covers(&self, key: &[u8]) -> bool {
        self.lo.as_slice() <= key && self.hi.as_deref().is_none_or(|hi| key < hi)
    }
}

/// A position in the leaf level of a [`BTree`].
///
/// Created by [`BTree::seek`]; repositioned in place by [`BTree::reseek`].
/// A cursor survives tree mutations (reseek then falls back to a full
/// descent), but entries read before the mutation must not be assumed
/// current.
pub struct Cursor {
    leaf: PageId,
    slot: usize,
    cached: Option<(PageId, Rc<Node>)>,
    /// Interior nodes root→parent-of-leaf from the most recent descent.
    path: Vec<PathLevel>,
    /// Fence interval of the *descended-to* leaf. Invalidated (set to
    /// `false`) when the cursor chains to the next leaf, because the chain
    /// walk does not know the new leaf's separators.
    fence_lo: Vec<u8>,
    fence_hi: Option<Vec<u8>>,
    fence_valid: bool,
    /// Tree mutation epoch at descent time; a mismatch voids path+fence.
    epoch: u64,
}

/// Descent accounting kept by the tree (survives cursor replacement):
/// how many root-or-LCA descents were performed and how many node fetches
/// they cost. A flat (non-hierarchical) seek always pays `height` fetches;
/// hierarchical reseeks pay only the levels below the LCA, and zero for
/// targets inside the current leaf. `depth_total / descents` is therefore
/// the average re-descent depth — the units of the paper's experiment 1
/// ("visited nodes").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeekStats {
    /// Descents that fetched at least one node (fresh seeks included).
    pub descents: u64,
    /// Total nodes fetched by those descents.
    pub depth_total: u64,
    /// Reseeks resolved inside the current leaf with no fetch at all.
    pub leaf_reseeks: u64,
}

/// A borrowed view of the entry under a cursor.
///
/// Holds a reference-counted handle to the decoded leaf (shared with the
/// tree's node cache), so no key or value bytes are copied. The view stays
/// valid across subsequent seeks and cursor movement; after a tree
/// *mutation* it continues to show the pre-mutation entry.
pub struct EntryRef {
    node: Rc<Node>,
    slot: usize,
}

impl Cursor {
    /// Page ids of the retained descent path, root first (empty until the
    /// first descent). Diagnostics and test hook.
    pub fn path_pages(&self) -> Vec<PageId> {
        self.path.iter().map(|l| l.id).collect()
    }

    /// The leaf page the cursor currently points into.
    pub fn leaf_page(&self) -> PageId {
        self.leaf
    }
}

impl EntryRef {
    fn leaf(&self) -> &crate::node::LeafNode {
        match &*self.node {
            Node::Leaf(l) => l,
            Node::Internal(_) => unreachable!("EntryRef is only built over leaves"),
        }
    }

    /// The entry's key bytes.
    pub fn key(&self) -> &[u8] {
        &self.leaf().entries[self.slot].key
    }

    /// The entry's value bytes.
    pub fn value(&self) -> &[u8] {
        &self.leaf().entries[self.slot].value
    }

    /// Clone the entry into owned `(key, value)` vectors.
    pub fn to_pair(&self) -> (Vec<u8>, Vec<u8>) {
        let e = &self.leaf().entries[self.slot];
        (e.key.clone(), e.value.clone())
    }
}

impl<S: PageStore> BTree<S> {
    /// Position a cursor at the first entry with key `>= key` via a full
    /// root-to-leaf descent.
    pub fn seek(&mut self, key: &[u8]) -> Result<Cursor> {
        let mut cur = Cursor {
            leaf: PageId::NULL,
            slot: 0,
            cached: None,
            path: Vec::new(),
            fence_lo: Vec::new(),
            fence_hi: None,
            fence_valid: false,
            epoch: self.epoch(),
        };
        self.descend(&mut cur, 0, self.root(), Vec::new(), None, key)?;
        Ok(cur)
    }

    /// Descend from `id` (whose subtree covers `[lo, hi)`) to the leaf
    /// containing the first entry `>= key`, rebuilding `cur.path` from
    /// `depth` downward. Fetches (and counts) every node from `id` down.
    fn descend(
        &mut self,
        cur: &mut Cursor,
        depth: usize,
        id: PageId,
        lo: Vec<u8>,
        hi: Option<Vec<u8>>,
        key: &[u8],
    ) -> Result<()> {
        cur.path.truncate(depth);
        let (mut id, mut lo, mut hi) = (id, lo, hi);
        let mut fetched = 0u64;
        loop {
            let node = self.load_cached(id)?;
            fetched += 1;
            match &*node {
                Node::Internal(int) => {
                    let ci = int.route(key);
                    let child = int.children[ci];
                    let child_lo = if ci == 0 {
                        lo.clone()
                    } else {
                        int.seps[ci - 1].clone()
                    };
                    let child_hi = if ci == int.seps.len() {
                        hi.clone()
                    } else {
                        Some(int.seps[ci].clone())
                    };
                    cur.path.push(PathLevel { id, node, lo, hi });
                    (id, lo, hi) = (child, child_lo, child_hi);
                }
                Node::Leaf(leaf) => {
                    cur.slot = leaf.entries.partition_point(|e| e.key.as_slice() < key);
                    cur.leaf = id;
                    cur.cached = Some((id, node));
                    cur.fence_lo = lo;
                    cur.fence_hi = hi;
                    cur.fence_valid = true;
                    cur.epoch = self.epoch();
                    let s = self.seek_stats_mut();
                    s.descents += 1;
                    s.depth_total += fetched;
                    self.metrics.seek_descents.inc();
                    self.metrics.seek_nodes.add(fetched);
                    return Ok(());
                }
            }
        }
    }

    /// Reposition `cur` at the first entry with key `>= key` without paying
    /// a full root descent when the retained path allows better:
    ///
    /// * target inside the current leaf's fence interval → move the slot,
    ///   zero fetches;
    /// * otherwise re-descend from the lowest retained ancestor whose
    ///   range covers the target, fetching only the nodes below it;
    /// * cursor invalidated by a mutation (epoch mismatch) → fresh
    ///   [`BTree::seek`] from the root.
    ///
    /// Equivalent to `*cur = tree.seek(key)?` in all cases (property-tested
    /// in `tests/reseek_prop.rs`); only the cost differs.
    pub fn reseek(&mut self, cur: &mut Cursor, key: &[u8]) -> Result<()> {
        if cur.epoch != self.epoch() {
            self.metrics.reseek_full.inc();
            *cur = self.seek(key)?;
            return Ok(());
        }
        if cur.fence_valid
            && cur.fence_lo.as_slice() <= key
            && cur.fence_hi.as_deref().is_none_or(|hi| key < hi)
        {
            // The answer slot is in the descended-to leaf (or, when the
            // target is past its last entry, the chain walk in
            // `cursor_entry` reaches it — the next leaf starts at or above
            // the fence, which is above the target).
            let needs_load = match &cur.cached {
                Some((id, _)) => *id != cur.leaf,
                None => true,
            };
            if needs_load {
                let node = self.load_cached(cur.leaf)?;
                cur.cached = Some((cur.leaf, node));
            }
            let (_, node) = cur.cached.as_ref().expect("just loaded");
            let Node::Leaf(leaf) = &**node else {
                return Err(pagestore::Error::Corrupt(
                    "cursor leaf is not a leaf".into(),
                ));
            };
            cur.slot = leaf.entries.partition_point(|e| e.key.as_slice() < key);
            self.seek_stats_mut().leaf_reseeks += 1;
            self.metrics.reseek_leaf.inc();
            return Ok(());
        }
        // Lowest retained ancestor covering the target. The root level
        // covers everything, so a non-empty path always yields one.
        let Some(depth) = cur.path.iter().rposition(|lvl| lvl.covers(key)) else {
            self.metrics.reseek_full.inc();
            *cur = self.seek(key)?;
            return Ok(());
        };
        let lvl = &cur.path[depth];
        let Node::Internal(int) = &*lvl.node else {
            return Err(pagestore::Error::Corrupt("cursor path holds a leaf".into()));
        };
        let ci = int.route(key);
        let child = int.children[ci];
        let child_lo = if ci == 0 {
            lvl.lo.clone()
        } else {
            int.seps[ci - 1].clone()
        };
        let child_hi = if ci == int.seps.len() {
            lvl.hi.clone()
        } else {
            Some(int.seps[ci].clone())
        };
        self.metrics.reseek_lca.inc();
        self.descend(cur, depth + 1, child, child_lo, child_hi, key)
    }

    /// Position a cursor at the smallest key in the tree.
    pub fn seek_first(&mut self) -> Result<Cursor> {
        self.seek(&[])
    }

    /// A borrowed view of the entry under the cursor, advancing across leaf
    /// boundaries as needed. Returns `None` when the cursor is past the
    /// last entry. This is the allocation-free scan hot path; see
    /// [`BTree::cursor_entry`] for the owned variant.
    pub fn cursor_entry_ref(&mut self, cur: &mut Cursor) -> Result<Option<EntryRef>> {
        loop {
            let needs_load = match &cur.cached {
                Some((id, _)) => *id != cur.leaf,
                None => true,
            };
            if needs_load {
                let node = self.load_cached(cur.leaf)?;
                cur.cached = Some((cur.leaf, node));
            }
            let (_, node) = cur.cached.as_ref().expect("just loaded");
            let Node::Leaf(leaf) = &**node else {
                return Err(pagestore::Error::Corrupt(
                    "cursor leaf is not a leaf".into(),
                ));
            };
            if cur.slot < leaf.entries.len() {
                return Ok(Some(EntryRef {
                    node: node.clone(),
                    slot: cur.slot,
                }));
            }
            if leaf.next.is_null() {
                return Ok(None);
            }
            cur.leaf = leaf.next;
            cur.slot = 0;
            // Chaining leaves the descent fences behind: the new leaf's
            // separators are unknown, so within-leaf reseek is off until
            // the next descent re-establishes them.
            cur.fence_valid = false;
        }
    }

    /// The entry under the cursor as owned vectors (compatibility and
    /// collection helpers; the scan hot path uses
    /// [`BTree::cursor_entry_ref`]).
    pub fn cursor_entry(&mut self, cur: &mut Cursor) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        Ok(self.cursor_entry_ref(cur)?.map(|e| e.to_pair()))
    }

    /// Step the cursor to the next entry.
    pub fn cursor_advance(&mut self, cur: &mut Cursor) {
        cur.slot += 1;
    }

    /// Collect all entries with `lo <= key < hi`.
    pub fn range(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek(lo)?;
        while let Some(e) = self.cursor_entry_ref(&mut cur)? {
            if e.key() >= hi {
                break;
            }
            out.push(e.to_pair());
            self.cursor_advance(&mut cur);
        }
        Ok(out)
    }

    /// Collect all entries whose key starts with `prefix`.
    pub fn prefix_scan(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek(prefix)?;
        while let Some(e) = self.cursor_entry_ref(&mut cur)? {
            if !e.key().starts_with(prefix) {
                break;
            }
            out.push(e.to_pair());
            self.cursor_advance(&mut cur);
        }
        Ok(out)
    }

    /// Collect every entry in key order (test/debug helper).
    pub fn scan_all(&mut self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek_first()?;
        while let Some(e) = self.cursor_entry_ref(&mut cur)? {
            out.push(e.to_pair());
            self.cursor_advance(&mut cur);
        }
        Ok(out)
    }
}
