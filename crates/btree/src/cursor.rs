//! Forward cursors over the leaf level.
//!
//! A [`Cursor`] holds the decoded node of its current leaf (shared with the
//! tree's decode cache), so stepping within a leaf costs no page fetches;
//! moving to the next leaf (or re-seeking) goes through the buffer pool and
//! is accounted normally. Cursors are invalidated by any mutation of the
//! tree.

use std::rc::Rc;

use pagestore::{PageId, PageStore, Result};

use crate::node::Node;
use crate::tree::BTree;

/// A position in the leaf level of a [`BTree`].
pub struct Cursor {
    leaf: PageId,
    slot: usize,
    cached: Option<(PageId, Rc<Node>)>,
}

impl<S: PageStore> BTree<S> {
    /// Position a cursor at the first entry with key `>= key`.
    pub fn seek(&mut self, key: &[u8]) -> Result<Cursor> {
        let mut id = self.root;
        loop {
            let node = self.load_cached(id)?;
            match &*node {
                Node::Internal(int) => id = int.children[int.route(key)],
                Node::Leaf(leaf) => {
                    let slot = leaf.entries.partition_point(|e| e.key.as_slice() < key);
                    return Ok(Cursor {
                        leaf: id,
                        slot,
                        cached: Some((id, node.clone())),
                    });
                }
            }
        }
    }

    /// Position a cursor at the smallest key in the tree.
    pub fn seek_first(&mut self) -> Result<Cursor> {
        self.seek(&[])
    }

    /// The entry under the cursor, advancing across leaf boundaries as
    /// needed. Returns `None` when the cursor is past the last entry.
    pub fn cursor_entry(&mut self, cur: &mut Cursor) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        loop {
            let needs_load = match &cur.cached {
                Some((id, _)) => *id != cur.leaf,
                None => true,
            };
            if needs_load {
                let node = self.load_cached(cur.leaf)?;
                cur.cached = Some((cur.leaf, node));
            }
            let (_, node) = cur.cached.as_ref().expect("just loaded");
            let Node::Leaf(leaf) = &**node else {
                return Err(pagestore::Error::Corrupt(
                    "cursor leaf is not a leaf".into(),
                ));
            };
            if cur.slot < leaf.entries.len() {
                let e = &leaf.entries[cur.slot];
                return Ok(Some((e.key.clone(), e.value.clone())));
            }
            if leaf.next.is_null() {
                return Ok(None);
            }
            cur.leaf = leaf.next;
            cur.slot = 0;
        }
    }

    /// Step the cursor to the next entry.
    pub fn cursor_advance(&mut self, cur: &mut Cursor) {
        cur.slot += 1;
    }

    /// Collect all entries with `lo <= key < hi`.
    pub fn range(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek(lo)?;
        while let Some((k, v)) = self.cursor_entry(&mut cur)? {
            if k.as_slice() >= hi {
                break;
            }
            out.push((k, v));
            self.cursor_advance(&mut cur);
        }
        Ok(out)
    }

    /// Collect all entries whose key starts with `prefix`.
    pub fn prefix_scan(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek(prefix)?;
        while let Some((k, v)) = self.cursor_entry(&mut cur)? {
            if !k.starts_with(prefix) {
                break;
            }
            out.push((k, v));
            self.cursor_advance(&mut cur);
        }
        Ok(out)
    }

    /// Collect every entry in key order (test/debug helper).
    pub fn scan_all(&mut self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek_first()?;
        while let Some(e) = self.cursor_entry(&mut cur)? {
            out.push(e);
            self.cursor_advance(&mut cur);
        }
        Ok(out)
    }
}
