//! Forward cursors over the leaf level, with hierarchical re-seeking —
//! hosted on a [`ReadView`], the `&self` read surface shared by the writer
//! handle and snapshot readers.
//!
//! A [`Cursor`] holds the decoded node of its current leaf (shared with the
//! frame-embedded decode cache), so stepping within a leaf costs no page
//! fetches; moving to the next leaf goes through the buffer pool and is
//! accounted normally.
//!
//! Beyond the leaf, a cursor *retains its descent path*: for every interior
//! node between the root and the leaf it keeps the decoded node plus the
//! separator bounds of the subtree it descended into. [`ReadView::reseek`]
//! exploits this for the skip-seeks of the paper's parallel retrieval
//! algorithm (Algorithm 1): instead of paying a full root-to-leaf descent
//! per skip, it
//!
//! 1. resolves the target *inside the current leaf* when the leaf's fence
//!    interval covers it (zero page fetches, zero allocations),
//! 2. otherwise walks *up* the retained path to the lowest common ancestor
//!    whose key range covers the target and re-descends from there,
//!    fetching only the nodes below the LCA (the retained ancestors are
//!    not re-fetched, exactly like the cached leaf is not re-fetched when
//!    stepping within it),
//! 3. falls back to a fresh root descent when the cursor was invalidated
//!    by a tree mutation (detected through the tree's epoch counter).
//!
//! Because skip targets and ranges never need owned key bytes, the scan
//! hot path reads entries through [`EntryRef`] — a borrowed view into the
//! shared decoded leaf — instead of cloning every key and value it
//! examines. `EntryRef` holds `Arc<Node>`, so it is `Send`: worker threads
//! can hand scan results around freely.

use std::sync::Arc;

use pagestore::{PageId, PageStore, Result};

use crate::node::Node;
use crate::tree::{decode_node, metrics, BTree, TreeReader, TreeShared, TreeSnapshot};

/// One retained level of a cursor's descent path: an interior node plus
/// the key range its subtree covers (`lo` inclusive, `hi` exclusive;
/// `None` = unbounded).
struct PathLevel {
    id: PageId,
    node: Arc<Node>,
    lo: Vec<u8>,
    hi: Option<Vec<u8>>,
}

impl PathLevel {
    fn covers(&self, key: &[u8]) -> bool {
        self.lo.as_slice() <= key && self.hi.as_deref().is_none_or(|hi| key < hi)
    }
}

/// Descent accounting, carried by the cursor (each query uses one cursor,
/// so per-query stats are simply the cursor's at scan end): how many
/// root-or-LCA descents were performed and how many node fetches they
/// cost. A flat (non-hierarchical) seek always pays `height` fetches;
/// hierarchical reseeks pay only the levels below the LCA, and zero for
/// targets inside the current leaf. `depth_total / descents` is therefore
/// the average re-descent depth — the units of the paper's experiment 1
/// ("visited nodes").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeekStats {
    /// Descents that fetched at least one node (fresh seeks included).
    pub descents: u64,
    /// Total nodes fetched by those descents.
    pub depth_total: u64,
    /// Reseeks resolved inside the current leaf with no fetch at all.
    pub leaf_reseeks: u64,
}

/// A position in the leaf level of a [`BTree`].
///
/// Created by [`ReadView::seek`] (or the [`BTree`] convenience wrappers);
/// repositioned in place by [`ReadView::reseek`]. A cursor survives tree
/// mutations (reseek then falls back to a full descent), but entries read
/// before the mutation must not be assumed current.
pub struct Cursor {
    leaf: PageId,
    slot: usize,
    cached: Option<(PageId, Arc<Node>)>,
    /// Interior nodes root→parent-of-leaf from the most recent descent.
    path: Vec<PathLevel>,
    /// Fence interval of the *descended-to* leaf. Invalidated (set to
    /// `false`) when the cursor chains to the next leaf, because the chain
    /// walk does not know the new leaf's separators.
    fence_lo: Vec<u8>,
    fence_hi: Option<Vec<u8>>,
    fence_valid: bool,
    /// Tree mutation epoch at descent time; a mismatch voids path+fence.
    epoch: u64,
    stats: SeekStats,
}

impl Cursor {
    fn new(epoch: u64) -> Self {
        Cursor {
            leaf: PageId::NULL,
            slot: 0,
            cached: None,
            path: Vec::new(),
            fence_lo: Vec::new(),
            fence_hi: None,
            fence_valid: false,
            epoch,
            stats: SeekStats::default(),
        }
    }

    /// Page ids of the retained descent path, root first (empty until the
    /// first descent). Diagnostics and test hook.
    pub fn path_pages(&self) -> Vec<PageId> {
        self.path.iter().map(|l| l.id).collect()
    }

    /// The leaf page the cursor currently points into.
    pub fn leaf_page(&self) -> PageId {
        self.leaf
    }

    /// Accumulated descent accounting since this cursor was created.
    pub fn seek_stats(&self) -> SeekStats {
        self.stats
    }

    /// Step to the next entry (within-leaf; leaf chaining happens in
    /// [`ReadView::cursor_entry_ref`]).
    pub fn advance(&mut self) {
        self.slot += 1;
    }
}

/// A borrowed view of the entry under a cursor.
///
/// Holds a reference-counted handle to the decoded leaf (shared with the
/// pool's decode cache), so no key or value bytes are copied, and the view
/// is `Send`. It stays valid across subsequent seeks and cursor movement;
/// after a tree *mutation* it continues to show the pre-mutation entry.
pub struct EntryRef {
    node: Arc<Node>,
    slot: usize,
}

impl EntryRef {
    fn leaf(&self) -> &crate::node::LeafNode {
        match &*self.node {
            Node::Leaf(l) => l,
            Node::Internal(_) => unreachable!("EntryRef is only built over leaves"),
        }
    }

    /// The entry's key bytes.
    pub fn key(&self) -> &[u8] {
        &self.leaf().entries[self.slot].key
    }

    /// The entry's value bytes.
    pub fn value(&self) -> &[u8] {
        &self.leaf().entries[self.slot].value
    }

    /// Clone the entry into owned `(key, value)` vectors.
    pub fn to_pair(&self) -> (Vec<u8>, Vec<u8>) {
        let e = &self.leaf().entries[self.slot];
        (e.key.clone(), e.value.clone())
    }
}

/// A read-only view of one tree state: either the writer's live state
/// ([`BTree::view`]) or a published snapshot ([`TreeReader::read`]). All
/// cursor machinery and read queries live here, `&self` throughout, so the
/// same code path serves the single-threaded writer and concurrent
/// snapshot scans.
pub struct ReadView<'a, S: PageStore> {
    shared: &'a TreeShared<S>,
    root: PageId,
    len: u64,
    epoch: u64,
    /// `Some(epoch)` for snapshot views: node loads consult the version
    /// store so the scan sees the tree as of that publish.
    snap_epoch: Option<u64>,
}

impl<S: PageStore> BTree<S> {
    /// A read view of the writer's current (possibly unpublished) state.
    pub fn view(&self) -> ReadView<'_, S> {
        ReadView {
            shared: &self.shared,
            root: self.root,
            len: self.len(),
            epoch: self.epoch(),
            snap_epoch: None,
        }
    }
}

impl<S: PageStore> TreeReader<S> {
    /// A read view of a snapshot. The view borrows the snapshot, so the
    /// epoch pin outlives every cursor the view hands out.
    pub fn read<'a>(&'a self, snap: &'a TreeSnapshot) -> ReadView<'a, S> {
        ReadView {
            shared: &self.shared,
            root: snap.root,
            len: snap.len,
            epoch: snap.epoch(),
            snap_epoch: Some(snap.epoch()),
        }
    }
}

impl<S: PageStore> ReadView<'_, S> {
    /// The root page id of this view.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Number of entries visible to this view.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether this view sees no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mutation epoch this view observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The buffer pool under the view (per-query accounting hooks).
    pub fn pool(&self) -> &pagestore::BufferPool<S> {
        &self.shared.pool
    }

    /// Load a node as this view sees it. Snapshot views consult the
    /// version store around the live-frame read: preservation
    /// happens-before mutation on the writer side, so if the re-check
    /// after decoding still misses, the decoded bytes predate any
    /// mutation and are the snapshot's own.
    fn load_cached(&self, id: PageId) -> Result<Arc<Node>> {
        let Some(e) = self.snap_epoch else {
            let page = self.shared.pool.fetch(id)?;
            return decode_node(&page);
        };
        let tracker = &self.shared.tracker;
        if let Some(n) = tracker.lookup(id, e) {
            metrics(|m| m.version_reads.inc());
            return Ok(n);
        }
        let page = self.shared.pool.fetch(id)?;
        let node = decode_node(&page)?;
        if let Some(n) = tracker.lookup(id, e) {
            metrics(|m| m.version_reads.inc());
            return Ok(n);
        }
        Ok(node)
    }

    /// Point lookup: the value stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut id = self.root;
        loop {
            let node = self.load_cached(id)?;
            match &*node {
                Node::Internal(int) => id = int.children[int.route(key)],
                Node::Leaf(leaf) => {
                    return Ok(leaf
                        .entries
                        .binary_search_by(|e| e.key.as_slice().cmp(key))
                        .ok()
                        .map(|i| leaf.entries[i].value.clone()));
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Position a cursor at the first entry with key `>= key` via a full
    /// root-to-leaf descent.
    pub fn seek(&self, key: &[u8]) -> Result<Cursor> {
        let mut cur = Cursor::new(self.epoch);
        self.descend(&mut cur, 0, self.root, Vec::new(), None, key)?;
        Ok(cur)
    }

    /// Position a cursor at the smallest key in the tree.
    pub fn seek_first(&self) -> Result<Cursor> {
        self.seek(&[])
    }

    /// Full root descent *in place*, preserving the cursor's accumulated
    /// [`SeekStats`] (unlike `*cur = view.seek(..)`, which would zero
    /// them).
    pub fn seek_into(&self, cur: &mut Cursor, key: &[u8]) -> Result<()> {
        cur.path.clear();
        cur.cached = None;
        cur.fence_valid = false;
        self.descend(cur, 0, self.root, Vec::new(), None, key)
    }

    /// Descend from `id` (whose subtree covers `[lo, hi)`) to the leaf
    /// containing the first entry `>= key`, rebuilding `cur.path` from
    /// `depth` downward. Fetches (and counts) every node from `id` down.
    fn descend(
        &self,
        cur: &mut Cursor,
        depth: usize,
        id: PageId,
        lo: Vec<u8>,
        hi: Option<Vec<u8>>,
        key: &[u8],
    ) -> Result<()> {
        cur.path.truncate(depth);
        let (mut id, mut lo, mut hi) = (id, lo, hi);
        let mut fetched = 0u64;
        loop {
            let node = self.load_cached(id)?;
            fetched += 1;
            match &*node {
                Node::Internal(int) => {
                    let ci = int.route(key);
                    let child = int.children[ci];
                    let child_lo = if ci == 0 {
                        lo.clone()
                    } else {
                        int.seps[ci - 1].clone()
                    };
                    let child_hi = if ci == int.seps.len() {
                        hi.clone()
                    } else {
                        Some(int.seps[ci].clone())
                    };
                    cur.path.push(PathLevel { id, node, lo, hi });
                    (id, lo, hi) = (child, child_lo, child_hi);
                }
                Node::Leaf(leaf) => {
                    cur.slot = leaf.entries.partition_point(|e| e.key.as_slice() < key);
                    cur.leaf = id;
                    cur.cached = Some((id, node));
                    cur.fence_lo = lo;
                    cur.fence_hi = hi;
                    cur.fence_valid = true;
                    cur.epoch = self.epoch;
                    cur.stats.descents += 1;
                    cur.stats.depth_total += fetched;
                    metrics(|m| {
                        m.seek_descents.inc();
                        m.seek_nodes.add(fetched);
                    });
                    return Ok(());
                }
            }
        }
    }

    /// Reposition `cur` at the first entry with key `>= key` without paying
    /// a full root descent when the retained path allows better:
    ///
    /// * target inside the current leaf's fence interval → move the slot,
    ///   zero fetches;
    /// * otherwise re-descend from the lowest retained ancestor whose
    ///   range covers the target, fetching only the nodes below it;
    /// * cursor invalidated by a mutation (epoch mismatch) → fresh full
    ///   descent from the root.
    ///
    /// Equivalent to `*cur = view.seek(key)?` in all cases (property-tested
    /// in `tests/reseek_prop.rs`); only the cost differs.
    pub fn reseek(&self, cur: &mut Cursor, key: &[u8]) -> Result<()> {
        if cur.epoch != self.epoch {
            metrics(|m| m.reseek_full.inc());
            return self.seek_into(cur, key);
        }
        if cur.fence_valid
            && cur.fence_lo.as_slice() <= key
            && cur.fence_hi.as_deref().is_none_or(|hi| key < hi)
        {
            // The answer slot is in the descended-to leaf (or, when the
            // target is past its last entry, the chain walk in
            // `cursor_entry_ref` reaches it — the next leaf starts at or
            // above the fence, which is above the target).
            let needs_load = match &cur.cached {
                Some((id, _)) => *id != cur.leaf,
                None => true,
            };
            if needs_load {
                let node = self.load_cached(cur.leaf)?;
                cur.cached = Some((cur.leaf, node));
            }
            let (_, node) = cur.cached.as_ref().expect("just loaded");
            let Node::Leaf(leaf) = &**node else {
                return Err(pagestore::Error::Corrupt(
                    "cursor leaf is not a leaf".into(),
                ));
            };
            cur.slot = leaf.entries.partition_point(|e| e.key.as_slice() < key);
            cur.stats.leaf_reseeks += 1;
            metrics(|m| m.reseek_leaf.inc());
            return Ok(());
        }
        // Lowest retained ancestor covering the target. The root level
        // covers everything, so a non-empty path always yields one.
        let Some(depth) = cur.path.iter().rposition(|lvl| lvl.covers(key)) else {
            metrics(|m| m.reseek_full.inc());
            return self.seek_into(cur, key);
        };
        let lvl = &cur.path[depth];
        let Node::Internal(int) = &*lvl.node else {
            return Err(pagestore::Error::Corrupt("cursor path holds a leaf".into()));
        };
        let ci = int.route(key);
        let child = int.children[ci];
        let child_lo = if ci == 0 {
            lvl.lo.clone()
        } else {
            int.seps[ci - 1].clone()
        };
        let child_hi = if ci == int.seps.len() {
            lvl.hi.clone()
        } else {
            Some(int.seps[ci].clone())
        };
        metrics(|m| m.reseek_lca.inc());
        self.descend(cur, depth + 1, child, child_lo, child_hi, key)
    }

    /// A borrowed view of the entry under the cursor, advancing across leaf
    /// boundaries as needed. Returns `None` when the cursor is past the
    /// last entry. This is the allocation-free scan hot path; see
    /// [`ReadView::cursor_entry`] for the owned variant.
    pub fn cursor_entry_ref(&self, cur: &mut Cursor) -> Result<Option<EntryRef>> {
        loop {
            let needs_load = match &cur.cached {
                Some((id, _)) => *id != cur.leaf,
                None => true,
            };
            if needs_load {
                let node = self.load_cached(cur.leaf)?;
                cur.cached = Some((cur.leaf, node));
            }
            let (_, node) = cur.cached.as_ref().expect("just loaded");
            let Node::Leaf(leaf) = &**node else {
                return Err(pagestore::Error::Corrupt(
                    "cursor leaf is not a leaf".into(),
                ));
            };
            if cur.slot < leaf.entries.len() {
                return Ok(Some(EntryRef {
                    node: node.clone(),
                    slot: cur.slot,
                }));
            }
            if leaf.next.is_null() {
                return Ok(None);
            }
            cur.leaf = leaf.next;
            cur.slot = 0;
            // Chaining leaves the descent fences behind: the new leaf's
            // separators are unknown, so within-leaf reseek is off until
            // the next descent re-establishes them.
            cur.fence_valid = false;
        }
    }

    /// The entry under the cursor as owned vectors (compatibility and
    /// collection helpers; the scan hot path uses
    /// [`ReadView::cursor_entry_ref`]).
    pub fn cursor_entry(&self, cur: &mut Cursor) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        Ok(self.cursor_entry_ref(cur)?.map(|e| e.to_pair()))
    }

    /// Step the cursor to the next entry.
    pub fn cursor_advance(&self, cur: &mut Cursor) {
        cur.advance();
    }

    /// Collect all entries with `lo <= key < hi`.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek(lo)?;
        while let Some(e) = self.cursor_entry_ref(&mut cur)? {
            if e.key() >= hi {
                break;
            }
            out.push(e.to_pair());
            cur.advance();
        }
        Ok(out)
    }

    /// Collect all entries whose key starts with `prefix`.
    pub fn prefix_scan(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek(prefix)?;
        while let Some(e) = self.cursor_entry_ref(&mut cur)? {
            if !e.key().starts_with(prefix) {
                break;
            }
            out.push(e.to_pair());
            cur.advance();
        }
        Ok(out)
    }

    /// Collect every entry in key order (test/debug helper).
    pub fn scan_all(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur = self.seek_first()?;
        while let Some(e) = self.cursor_entry_ref(&mut cur)? {
            out.push(e.to_pair());
            cur.advance();
        }
        Ok(out)
    }
}

/// Convenience wrappers so existing single-threaded call sites keep their
/// original shapes: each one builds a live [`ReadView`] and delegates.
impl<S: PageStore> BTree<S> {
    /// Point lookup: the value stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.view().get(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        self.view().contains(key)
    }

    /// See [`ReadView::seek`].
    pub fn seek(&self, key: &[u8]) -> Result<Cursor> {
        self.view().seek(key)
    }

    /// See [`ReadView::seek_first`].
    pub fn seek_first(&self) -> Result<Cursor> {
        self.view().seek_first()
    }

    /// See [`ReadView::reseek`].
    pub fn reseek(&self, cur: &mut Cursor, key: &[u8]) -> Result<()> {
        self.view().reseek(cur, key)
    }

    /// See [`ReadView::cursor_entry_ref`].
    pub fn cursor_entry_ref(&self, cur: &mut Cursor) -> Result<Option<EntryRef>> {
        self.view().cursor_entry_ref(cur)
    }

    /// See [`ReadView::cursor_entry`].
    pub fn cursor_entry(&self, cur: &mut Cursor) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        self.view().cursor_entry(cur)
    }

    /// See [`ReadView::cursor_advance`].
    pub fn cursor_advance(&self, cur: &mut Cursor) {
        cur.advance();
    }

    /// See [`ReadView::range`].
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.view().range(lo, hi)
    }

    /// See [`ReadView::prefix_scan`].
    pub fn prefix_scan(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.view().prefix_scan(prefix)
    }

    /// See [`ReadView::scan_all`].
    pub fn scan_all(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.view().scan_all()
    }
}
