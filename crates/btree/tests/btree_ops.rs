//! Functional tests for the B+-tree: inserts, deletes, cursors, splits,
//! merges, both capacity models, compression on/off.

use btree::{BTree, BTreeConfig};
use pagestore::{BufferPool, MemStore};

fn new_tree(page_size: usize, config: BTreeConfig) -> BTree<MemStore> {
    let pool = BufferPool::new(MemStore::new(page_size), 4096);
    BTree::create(pool, config).unwrap()
}

fn key(i: u32) -> Vec<u8> {
    format!("key-{i:08}").into_bytes()
}

fn val(i: u32) -> Vec<u8> {
    format!("value-{i}").into_bytes()
}

#[test]
fn empty_tree_behaviour() {
    let mut t = new_tree(256, BTreeConfig::default());
    assert!(t.is_empty());
    assert_eq!(t.get(b"anything").unwrap(), None);
    assert_eq!(t.delete(b"anything").unwrap(), None);
    assert_eq!(t.scan_all().unwrap(), vec![]);
    let stats = t.verify().unwrap();
    assert_eq!(stats.height, 1);
    assert_eq!(stats.entries, 0);
}

#[test]
fn single_entry() {
    let mut t = new_tree(256, BTreeConfig::default());
    assert_eq!(t.insert(b"k", b"v").unwrap(), None);
    assert_eq!(t.get(b"k").unwrap(), Some(b"v".to_vec()));
    assert_eq!(t.len(), 1);
    assert_eq!(t.insert(b"k", b"w").unwrap(), Some(b"v".to_vec()));
    assert_eq!(t.len(), 1, "replace does not grow");
    assert_eq!(t.delete(b"k").unwrap(), Some(b"w".to_vec()));
    assert!(t.is_empty());
    t.verify().unwrap();
}

#[test]
fn sequential_inserts_and_lookups() {
    let mut t = new_tree(256, BTreeConfig::default());
    for i in 0..2000 {
        t.insert(&key(i), &val(i)).unwrap();
    }
    assert_eq!(t.len(), 2000);
    let stats = t.verify().unwrap();
    assert!(stats.height >= 3, "small pages force a deep tree");
    for i in (0..2000).step_by(37) {
        assert_eq!(t.get(&key(i)).unwrap(), Some(val(i)));
    }
    assert_eq!(t.get(b"key-99999999x").unwrap(), None);
}

#[test]
fn reverse_order_inserts() {
    let mut t = new_tree(256, BTreeConfig::default());
    for i in (0..1000).rev() {
        t.insert(&key(i), &val(i)).unwrap();
    }
    t.verify().unwrap();
    let all = t.scan_all().unwrap();
    assert_eq!(all.len(), 1000);
    for (i, (k, _)) in all.iter().enumerate() {
        assert_eq!(k, &key(i as u32));
    }
}

#[test]
fn interleaved_inserts() {
    let mut t = new_tree(256, BTreeConfig::default());
    // Insert evens then odds to force mid-node insertions everywhere.
    for i in (0..1000).step_by(2) {
        t.insert(&key(i), &val(i)).unwrap();
    }
    for i in (1..1000).step_by(2) {
        t.insert(&key(i), &val(i)).unwrap();
    }
    t.verify().unwrap();
    assert_eq!(t.len(), 1000);
}

#[test]
fn delete_everything_both_directions() {
    for forward in [true, false] {
        let mut t = new_tree(256, BTreeConfig::default());
        let n = 1200u32;
        for i in 0..n {
            t.insert(&key(i), &val(i)).unwrap();
        }
        let order: Vec<u32> = if forward {
            (0..n).collect()
        } else {
            (0..n).rev().collect()
        };
        for (step, i) in order.iter().enumerate() {
            assert_eq!(t.delete(&key(*i)).unwrap(), Some(val(*i)), "delete {i}");
            if step % 97 == 0 {
                t.verify().unwrap();
            }
        }
        assert!(t.is_empty());
        t.verify().unwrap();
    }
}

#[test]
fn delete_middle_out() {
    let mut t = new_tree(256, BTreeConfig::default());
    let n = 800u32;
    for i in 0..n {
        t.insert(&key(i), &val(i)).unwrap();
    }
    // Delete from the middle outward, stressing merges on both sides.
    let mut order = Vec::new();
    let (mut lo, mut hi) = (n / 2, n / 2 + 1);
    order.push(n / 2);
    while lo > 0 || hi < n {
        if lo > 0 {
            lo -= 1;
            order.push(lo);
        }
        if hi < n {
            order.push(hi);
            hi += 1;
        }
    }
    for (step, i) in order.iter().enumerate() {
        assert!(t.delete(&key(*i)).unwrap().is_some());
        if step % 131 == 0 {
            t.verify().unwrap();
        }
    }
    assert!(t.is_empty());
}

#[test]
fn entry_capacity_mode_matches_paper_geometry() {
    // The paper's experiment 1: max 10 records per node.
    let mut t = new_tree(1024, BTreeConfig::with_max_entries(10));
    for i in 0..2000 {
        t.insert(&key(i), &[]).unwrap();
    }
    let stats = t.verify().unwrap();
    // Every leaf holds between 5 and 10 entries.
    assert!(stats.leaf_nodes >= 200, "leaves: {}", stats.leaf_nodes);
    assert!(stats.leaf_nodes <= 400, "leaves: {}", stats.leaf_nodes);
    for i in (0..2000).step_by(101) {
        assert!(t.contains(&key(i)).unwrap());
    }
}

#[test]
fn compression_off_still_correct() {
    let mut t = new_tree(256, BTreeConfig::default().without_compression());
    for i in 0..1500 {
        t.insert(&key(i), &val(i)).unwrap();
    }
    t.verify().unwrap();
    for i in (0..1500).step_by(53) {
        assert_eq!(t.get(&key(i)).unwrap(), Some(val(i)));
    }
}

#[test]
fn compression_reduces_node_count() {
    // Keys share a long prefix, so compression packs far more per page.
    let mk = |i: u32| format!("common/long/shared/prefix/key-{i:08}").into_bytes();
    let build = |compress: bool| {
        let cfg = if compress {
            BTreeConfig::default()
        } else {
            BTreeConfig::default().without_compression()
        };
        let mut t = new_tree(512, cfg);
        for i in 0..3000 {
            t.insert(&mk(i), &[]).unwrap();
        }
        t.verify().unwrap()
    };
    let with = build(true);
    let without = build(false);
    assert!(
        with.leaf_nodes * 2 <= without.leaf_nodes,
        "compressed {} vs uncompressed {} leaves",
        with.leaf_nodes,
        without.leaf_nodes
    );
}

#[test]
fn cursor_seek_positions() {
    let mut t = new_tree(256, BTreeConfig::default());
    for i in (0..100).map(|i| i * 10) {
        t.insert(&key(i), &val(i)).unwrap();
    }
    // Exact hit.
    let mut c = t.seek(&key(500)).unwrap();
    assert_eq!(t.cursor_entry(&mut c).unwrap().unwrap().0, key(500));
    // Between keys: lands on the next larger.
    let mut c = t.seek(&key(501)).unwrap();
    assert_eq!(t.cursor_entry(&mut c).unwrap().unwrap().0, key(510));
    // Before everything.
    let mut c = t.seek(b"").unwrap();
    assert_eq!(t.cursor_entry(&mut c).unwrap().unwrap().0, key(0));
    // Past everything.
    let mut c = t.seek(&key(100_000)).unwrap();
    assert!(t.cursor_entry(&mut c).unwrap().is_none());
}

#[test]
fn range_and_prefix_scans() {
    let mut t = new_tree(256, BTreeConfig::default());
    for i in 0..500 {
        t.insert(&key(i), &val(i)).unwrap();
    }
    let r = t.range(&key(100), &key(110)).unwrap();
    assert_eq!(r.len(), 10);
    assert_eq!(r[0].0, key(100));
    assert_eq!(r[9].0, key(109));

    let p = t.prefix_scan(b"key-0000012").unwrap();
    assert_eq!(p.len(), 10); // key-00000120 ..= key-00000129
    assert!(p.iter().all(|(k, _)| k.starts_with(b"key-0000012")));

    // Empty range.
    assert!(t.range(&key(300), &key(300)).unwrap().is_empty());
}

#[test]
fn bulk_load_matches_incremental() {
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..5000u32).map(|i| (key(i), val(i))).collect();
    let pool = BufferPool::new(MemStore::new(512), 4096);
    let bulk = BTree::bulk_load(pool, BTreeConfig::default(), items.clone()).unwrap();
    let stats = bulk.verify().unwrap();
    assert_eq!(stats.entries, 5000);
    assert_eq!(bulk.scan_all().unwrap(), items);

    let mut incr = new_tree(512, BTreeConfig::default());
    for (k, v) in &items {
        incr.insert(k, v).unwrap();
    }
    let incr_stats = incr.verify().unwrap();
    // Bulk loading packs tighter than random splits.
    assert!(stats.leaf_nodes <= incr_stats.leaf_nodes);
}

#[test]
fn bulk_load_rejects_unsorted() {
    let pool = BufferPool::new(MemStore::new(512), 64);
    let items = vec![(b"b".to_vec(), vec![]), (b"a".to_vec(), vec![])];
    assert!(BTree::bulk_load(pool, BTreeConfig::default(), items).is_err());
    let pool = BufferPool::new(MemStore::new(512), 64);
    let dup = vec![(b"a".to_vec(), vec![]), (b"a".to_vec(), vec![])];
    assert!(BTree::bulk_load(pool, BTreeConfig::default(), dup).is_err());
}

#[test]
fn bulk_load_empty_and_tiny() {
    let pool = BufferPool::new(MemStore::new(512), 64);
    let t = BTree::bulk_load(pool, BTreeConfig::default(), Vec::new()).unwrap();
    assert!(t.is_empty());
    t.verify().unwrap();

    let pool = BufferPool::new(MemStore::new(512), 64);
    let t = BTree::bulk_load(
        pool,
        BTreeConfig::default(),
        vec![(b"only".to_vec(), b"one".to_vec())],
    )
    .unwrap();
    assert_eq!(t.len(), 1);
    assert_eq!(t.get(b"only").unwrap(), Some(b"one".to_vec()));
    t.verify().unwrap();
}

#[test]
fn bulk_load_entry_capacity() {
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..997u32).map(|i| (key(i), vec![])).collect();
    let pool = BufferPool::new(MemStore::new(1024), 4096);
    let t = BTree::bulk_load(pool, BTreeConfig::with_max_entries(10), items).unwrap();
    let stats = t.verify().unwrap();
    assert_eq!(stats.entries, 997);
}

#[test]
fn batch_insert_and_delete() {
    let mut t = new_tree(512, BTreeConfig::default());
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..1000u32).rev().map(|i| (key(i), val(i))).collect();
    assert_eq!(t.insert_batch(items).unwrap(), 1000);
    assert_eq!(t.len(), 1000);
    // Re-inserting is all replacements.
    let again: Vec<(Vec<u8>, Vec<u8>)> = (0..100u32).map(|i| (key(i), val(i))).collect();
    assert_eq!(t.insert_batch(again).unwrap(), 0);
    let dels: Vec<Vec<u8>> = (0..500u32).map(key).collect();
    assert_eq!(t.delete_batch(dels).unwrap(), 500);
    assert_eq!(t.len(), 500);
    t.verify().unwrap();
}

#[test]
fn oversized_entry_rejected() {
    let mut t = new_tree(256, BTreeConfig::default());
    let huge = vec![b'x'; 300];
    assert!(t.insert(&huge, b"").is_err());
    assert!(t.insert(b"k", &huge).is_err());
}

#[test]
fn key_only_entries() {
    // The U-index stores key-only entries; make sure empty values work.
    let mut t = new_tree(256, BTreeConfig::default());
    for i in 0..800 {
        t.insert(&key(i), &[]).unwrap();
    }
    assert_eq!(t.get(&key(400)).unwrap(), Some(vec![]));
    assert!(t.contains(&key(400)).unwrap());
    assert!(!t.contains(b"nope").unwrap());
    t.verify().unwrap();
}

#[test]
fn query_page_accounting() {
    let mut t = new_tree(256, BTreeConfig::default());
    for i in 0..5000 {
        t.insert(&key(i), &[]).unwrap();
    }
    let height = t.verify().unwrap().height;

    // A point lookup touches exactly `height` distinct pages.
    t.pool().begin_query();
    t.get(&key(2500)).unwrap();
    let q = t.pool().query_stats();
    assert_eq!(q.distinct_pages as usize, height);

    // A second lookup of the same key in the same query is free.
    t.get(&key(2500)).unwrap();
    assert_eq!(
        t.pool().query_stats().distinct_pages as usize,
        height,
        "revisits are not recounted"
    );

    // A range scan touches height + extra leaves.
    t.pool().begin_query();
    let r = t.range(&key(1000), &key(1200)).unwrap();
    assert_eq!(r.len(), 200);
    let scan_pages = t.pool().query_stats().distinct_pages as usize;
    assert!(scan_pages > height);
    assert!(scan_pages < height + 60, "got {scan_pages}");
}

#[test]
fn page_reuse_after_merges() {
    // Inserting then deleting most entries should shrink the live page set.
    let mut t = new_tree(256, BTreeConfig::default());
    for i in 0..2000 {
        t.insert(&key(i), &[]).unwrap();
    }
    let peak = t.pool().live_pages();
    for i in 0..1990 {
        t.delete(&key(i)).unwrap();
    }
    t.verify().unwrap();
    assert!(
        t.pool().live_pages() < peak / 4,
        "pages not reclaimed: {} of {}",
        t.pool().live_pages(),
        peak
    );
}

#[test]
fn long_common_prefixes_across_splits() {
    // Pathological: keys identical except the last bytes; splits must keep
    // separators valid.
    let mk = |i: u32| {
        let mut k = vec![b'z'; 40];
        k.extend_from_slice(format!("{i:06}").as_bytes());
        k
    };
    let mut t = new_tree(256, BTreeConfig::default());
    for i in 0..2000 {
        t.insert(&mk(i), &[]).unwrap();
    }
    t.verify().unwrap();
    for i in (0..2000).step_by(71) {
        assert!(t.contains(&mk(i)).unwrap());
    }
    for i in 0..2000 {
        assert!(t.delete(&mk(i)).unwrap().is_some());
    }
    assert!(t.is_empty());
}

#[test]
fn binary_keys_with_zero_bytes() {
    let mut t = new_tree(256, BTreeConfig::default());
    let keys: Vec<Vec<u8>> = (0..500u16)
        .map(|i| {
            let mut k = vec![0u8, 0, i as u8];
            k.extend_from_slice(&i.to_be_bytes());
            k.push(0);
            k
        })
        .collect();
    for k in &keys {
        t.insert(k, b"v").unwrap();
    }
    t.verify().unwrap();
    for k in &keys {
        assert!(t.contains(k).unwrap());
    }
}

#[test]
fn stats_shape_reasonable() {
    let mut t = new_tree(1024, BTreeConfig::default());
    for i in 0..20_000u32 {
        t.insert(&key(i), &[]).unwrap();
    }
    let s = t.verify().unwrap();
    assert_eq!(s.entries, 20_000);
    // ~18-byte keys, compressed, in 1 KiB pages: expect high leaf fanout.
    let per_leaf = 20_000 / s.leaf_nodes;
    assert!(per_leaf > 30, "per-leaf {per_leaf}");
    assert!(s.height <= 4, "height {}", s.height);
    assert!(s.internal_nodes < s.leaf_nodes);
}
