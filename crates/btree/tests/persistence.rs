//! File-backed durability: build a tree on a FileStore, flush, reopen the
//! file, and read everything back.

use btree::{BTree, BTreeConfig};
use pagestore::{BufferPool, FileStore};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("btree_persist_{}_{}", std::process::id(), name));
    p
}

#[test]
fn build_flush_reopen() {
    let path = tmp("roundtrip");
    let (root, len) = {
        let store = FileStore::create(&path, 512).unwrap();
        let pool = BufferPool::new(store, 256);
        let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
        for i in 0..3000u32 {
            tree.insert(format!("key-{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        tree.verify().unwrap();
        tree.pool().flush().unwrap();
        (tree.root(), tree.len())
    };
    {
        let store = FileStore::open(&path).unwrap();
        let pool = BufferPool::new(store, 256);
        let tree = BTree::open(pool, BTreeConfig::default(), root, len);
        assert_eq!(tree.len(), 3000);
        tree.verify().unwrap();
        for i in (0..3000u32).step_by(97) {
            assert_eq!(
                tree.get(format!("key-{i:06}").as_bytes()).unwrap(),
                Some(i.to_le_bytes().to_vec()),
                "key {i}"
            );
        }
        // Range scans traverse the leaf chain from disk.
        let r = tree.range(b"key-001000", b"key-001100").unwrap();
        assert_eq!(r.len(), 100);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mutations_after_reopen() {
    let path = tmp("mutate");
    let (root, len) = {
        let store = FileStore::create(&path, 512).unwrap();
        let pool = BufferPool::new(store, 64);
        let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
        for i in 0..500u32 {
            tree.insert(format!("k{i:05}").as_bytes(), b"v").unwrap();
        }
        tree.pool().flush().unwrap();
        (tree.root(), tree.len())
    };
    let store = FileStore::open(&path).unwrap();
    let pool = BufferPool::new(store, 64);
    let mut tree = BTree::open(pool, BTreeConfig::default(), root, len);
    for i in 0..250u32 {
        assert!(tree
            .delete(format!("k{i:05}").as_bytes())
            .unwrap()
            .is_some());
    }
    for i in 500..700u32 {
        tree.insert(format!("k{i:05}").as_bytes(), b"w").unwrap();
    }
    tree.verify().unwrap();
    assert_eq!(tree.len(), 450);
    tree.pool().flush().unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn small_buffer_pool_evicts_and_reloads() {
    // A pool far smaller than the tree forces constant eviction; the tree
    // must stay correct when most nodes live only on disk.
    let path = tmp("evict");
    let store = FileStore::create(&path, 512).unwrap();
    let pool = BufferPool::new(store, 8);
    let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
    for i in 0..2000u32 {
        tree.insert(format!("k{i:06}").as_bytes(), &i.to_be_bytes())
            .unwrap();
    }
    // NOTE: verify() walks everything through the tiny pool.
    let stats = tree.verify().unwrap();
    assert!(stats.leaf_nodes > 8, "tree larger than the pool");
    for i in (0..2000u32).step_by(61) {
        assert_eq!(
            tree.get(format!("k{i:06}").as_bytes()).unwrap(),
            Some(i.to_be_bytes().to_vec())
        );
    }
    assert!(
        tree.pool().stats().physical_writes > 0,
        "evictions must write back"
    );
    std::fs::remove_file(&path).ok();
}
