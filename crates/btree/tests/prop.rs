//! Property-based tests: the B+-tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and keep
//! all structural invariants, across both capacity models and with
//! compression on or off.

use std::collections::BTreeMap;

use btree::{BTree, BTreeConfig};
use pagestore::{BufferPool, MemStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    Range(Vec<u8>, Vec<u8>),
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet and length produce many collisions and shared prefixes.
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(0u8)],
        1..12,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (arb_key(), proptest::collection::vec(any::<u8>(), 0..6))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        2 => arb_key().prop_map(Op::Delete),
        1 => arb_key().prop_map(Op::Get),
        1 => (arb_key(), arb_key()).prop_map(|(a, b)| Op::Range(a, b)),
    ]
}

fn run_model(ops: Vec<Op>, config: BTreeConfig, page_size: usize) {
    let pool = BufferPool::new(MemStore::new(page_size), 4096);
    let mut tree = BTree::create(pool, config).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for (i, op) in ops.into_iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                let expected = model.insert(k.clone(), v.clone());
                let got = tree.insert(&k, &v).unwrap();
                assert_eq!(got, expected, "insert #{i}");
            }
            Op::Delete(k) => {
                let expected = model.remove(&k);
                let got = tree.delete(&k).unwrap();
                assert_eq!(got, expected, "delete #{i}");
            }
            Op::Get(k) => {
                assert_eq!(tree.get(&k).unwrap(), model.get(&k).cloned(), "get #{i}");
            }
            Op::Range(a, b) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let got = tree.range(&lo, &hi).unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(lo..hi)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, expected, "range #{i}");
            }
        }
        assert_eq!(tree.len(), model.len() as u64);
    }
    let stats = tree.verify().unwrap();
    assert_eq!(stats.entries, model.len() as u64);
    let all = tree.scan_all().unwrap();
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(all, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap_bytes_capacity(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(ops, BTreeConfig::default(), 128);
    }

    #[test]
    fn matches_btreemap_no_compression(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(ops, BTreeConfig::default().without_compression(), 128);
    }

    #[test]
    fn matches_btreemap_entry_capacity(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(ops, BTreeConfig::with_max_entries(4), 512);
    }

    #[test]
    fn matches_btreemap_entry_capacity_ten(ops in proptest::collection::vec(arb_op(), 0..300)) {
        run_model(ops, BTreeConfig::with_max_entries(10), 1024);
    }

    #[test]
    fn bulk_load_equals_scan(mut keys in proptest::collection::btree_set(arb_key(), 0..300)) {
        let items: Vec<(Vec<u8>, Vec<u8>)> = keys
            .iter()
            .map(|k| (k.clone(), vec![k.len() as u8]))
            .collect();
        let pool = BufferPool::new(MemStore::new(128), 4096);
        let tree = BTree::bulk_load(pool, BTreeConfig::default(), items.clone()).unwrap();
        tree.verify().unwrap();
        prop_assert_eq!(tree.scan_all().unwrap(), items);
        // Spot-check point lookups.
        if let Some(first) = keys.pop_first() {
            prop_assert!(tree.contains(&first).unwrap());
        }
    }

    #[test]
    fn seek_is_lower_bound(
        keys in proptest::collection::btree_set(arb_key(), 1..200),
        probe in arb_key(),
    ) {
        let pool = BufferPool::new(MemStore::new(128), 4096);
        let items: Vec<(Vec<u8>, Vec<u8>)> =
            keys.iter().map(|k| (k.clone(), vec![])).collect();
        let tree = BTree::bulk_load(pool, BTreeConfig::default(), items).unwrap();
        let mut cur = tree.seek(&probe).unwrap();
        let got = tree.cursor_entry(&mut cur).unwrap().map(|(k, _)| k);
        let expected = keys.range(probe..).next().cloned();
        prop_assert_eq!(got, expected);
    }
}
