//! Property tests for hierarchical re-seeking: `reseek(cursor, k)` must
//! land on exactly the entry a fresh `seek(k)` finds, for arbitrary trees
//! and target sequences — including backward targets, targets resolved
//! after the cursor chained across leaf boundaries (stale fences), and
//! targets issued after mutations invalidated the retained path (epoch
//! bump). Only the cost may differ, never the position.

use std::collections::BTreeMap;

use btree::{BTree, BTreeConfig, Capacity};
use pagestore::{BufferPool, MemStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Reseek the long-lived cursor and compare against a fresh seek.
    Reseek(Vec<u8>),
    /// Step the cursor forward (possibly across leaf boundaries).
    Advance(u8),
    /// Mutate the tree, invalidating the cursor's retained path.
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(0u8)],
        1..12,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => arb_key().prop_map(Op::Reseek),
        3 => any::<u8>().prop_map(Op::Advance),
        1 => (arb_key(), proptest::collection::vec(any::<u8>(), 0..4))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        1 => arb_key().prop_map(Op::Delete),
    ]
}

/// The entry a cursor currently rests on, read without disturbing it.
fn entry_at<S: pagestore::PageStore>(
    tree: &BTree<S>,
    cur: &mut btree::Cursor,
) -> Option<(Vec<u8>, Vec<u8>)> {
    tree.cursor_entry(cur).unwrap()
}

fn run_reseek_model(initial: Vec<(Vec<u8>, Vec<u8>)>, ops: Vec<Op>, config: BTreeConfig) {
    let pool = BufferPool::new(MemStore::new(256), 4096);
    let mut tree = BTree::create(pool, config).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for (k, v) in initial {
        model.insert(k.clone(), v.clone());
        tree.insert(&k, &v).unwrap();
    }
    let mut cur = tree.seek(&[]).unwrap();
    for (i, op) in ops.into_iter().enumerate() {
        match op {
            Op::Reseek(k) => {
                tree.reseek(&mut cur, &k).unwrap();
                let got = entry_at(&tree, &mut cur);
                let mut fresh = tree.seek(&k).unwrap();
                let want = entry_at(&tree, &mut fresh);
                assert_eq!(got, want, "reseek #{i} diverges from fresh seek");
                // And both agree with the model's view of "first >= k".
                let expect = model
                    .range(k.clone()..)
                    .next()
                    .map(|(a, b)| (a.clone(), b.clone()));
                assert_eq!(got, expect, "reseek #{i} diverges from model");
            }
            Op::Advance(n) => {
                for _ in 0..(n % 4) {
                    if entry_at(&tree, &mut cur).is_none() {
                        break;
                    }
                    tree.cursor_advance(&mut cur);
                }
            }
            Op::Insert(k, v) => {
                model.insert(k.clone(), v.clone());
                tree.insert(&k, &v).unwrap();
            }
            Op::Delete(k) => {
                model.remove(&k);
                tree.delete(&k).unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reseek_equals_seek_bytes_capacity(
        initial in proptest::collection::vec(
            (arb_key(), proptest::collection::vec(any::<u8>(), 0..4)), 0..120),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        run_reseek_model(initial, ops, BTreeConfig::default());
    }

    #[test]
    fn reseek_equals_seek_entry_capacity(
        initial in proptest::collection::vec(
            (arb_key(), proptest::collection::vec(any::<u8>(), 0..4)), 0..120),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        // Max 4 entries per node forces tall trees, exercising deep LCA
        // re-descents.
        let config = BTreeConfig {
            capacity: Capacity::Entries(4),
            ..BTreeConfig::default()
        };
        run_reseek_model(initial, ops, config);
    }
}

/// Directed (non-random) coverage of the three reseek paths with cost
/// assertions: within-leaf fast path, LCA re-descent, and epoch fallback.
#[test]
fn reseek_paths_and_costs() {
    let pool = BufferPool::new(MemStore::new(1024), 4096);
    let config = BTreeConfig {
        capacity: Capacity::Entries(4),
        ..BTreeConfig::default()
    };
    let keys: Vec<Vec<u8>> = (0..500u32)
        .map(|i| format!("{i:06}").into_bytes())
        .collect();
    let mut tree =
        BTree::bulk_load(pool, config, keys.iter().map(|k| (k.clone(), Vec::new()))).unwrap();

    // Initial descent. Seek stats ride on the cursor and accumulate, so
    // each phase below measures a delta.
    let mut cur = tree.seek(b"000000").unwrap();
    let height = cur.seek_stats().depth_total;
    assert!(
        height >= 3,
        "tree too shallow for the test: height {height}"
    );
    assert_eq!(cur.seek_stats().descents, 1);

    // Within-leaf: next key lives in the same leaf (4-entry leaves).
    let before = cur.seek_stats();
    tree.reseek(&mut cur, b"000001").unwrap();
    let s = cur.seek_stats();
    assert_eq!(
        (
            s.descents - before.descents,
            s.depth_total - before.depth_total,
            s.leaf_reseeks - before.leaf_reseeks
        ),
        (0, 0, 1)
    );
    let e = tree.cursor_entry(&mut cur).unwrap().unwrap();
    assert_eq!(e.0, b"000001");

    // Nearby target: the LCA re-descent must fetch fewer nodes than the
    // full height.
    let before = cur.seek_stats();
    tree.reseek(&mut cur, b"000017").unwrap();
    let s = cur.seek_stats();
    assert_eq!(s.descents - before.descents, 1);
    assert!(
        s.depth_total - before.depth_total < height,
        "near reseek paid a full descent: {} vs height {height}",
        s.depth_total - before.depth_total
    );
    let e = tree.cursor_entry(&mut cur).unwrap().unwrap();
    assert_eq!(e.0, b"000017");

    // Backward target: also via the retained path, same contract.
    tree.reseek(&mut cur, b"000003").unwrap();
    let e = tree.cursor_entry(&mut cur).unwrap().unwrap();
    assert_eq!(e.0, b"000003");

    // Mutation bumps the epoch: reseek must fall back to a full descent
    // and still land correctly — *in place*, preserving the cursor's
    // accumulated stats rather than zeroing them. (The insert may have
    // grown the tree, so measure the post-mutation height with a fresh
    // seek.)
    tree.insert(b"000003x", b"").unwrap();
    let probe = tree.seek(b"000003x").unwrap();
    let new_height = probe.seek_stats().depth_total;
    let before = cur.seek_stats();
    tree.reseek(&mut cur, b"000003x").unwrap();
    let s = cur.seek_stats();
    assert_eq!(s.descents - before.descents, 1);
    assert_eq!(
        s.depth_total - before.depth_total,
        new_height,
        "epoch-invalidated reseek must re-descend from the root"
    );
    let e = tree.cursor_entry(&mut cur).unwrap().unwrap();
    assert_eq!(e.0, b"000003x");
}
