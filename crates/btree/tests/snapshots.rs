//! Snapshot-read semantics: published-state isolation, version-store
//! preservation across writer churn, deferred-free reclamation (no page
//! leaks), and a concurrent scanners-vs-mutator smoke against a model.
//! The full multi-layer torture test lives in the uindex crate; this file
//! pins the btree-level contract it builds on.

use std::collections::BTreeMap;
use std::sync::Mutex;

use btree::{BTree, BTreeConfig, Capacity, TreeReader, TreeSnapshot};
use pagestore::{BufferPool, MemStore};

fn small_tree() -> BTree<MemStore> {
    let pool = BufferPool::new(MemStore::new(1024), 4096);
    let config = BTreeConfig {
        capacity: Capacity::Entries(4),
        ..BTreeConfig::default()
    };
    BTree::create(pool, config).unwrap()
}

fn key(i: u32) -> Vec<u8> {
    format!("{i:06}").into_bytes()
}

#[test]
fn send_sync_static_assertions() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BufferPool<MemStore>>();
    assert_send_sync::<TreeReader<MemStore>>();
    assert_send::<TreeSnapshot>();
    assert_send::<btree::EntryRef>();
}

#[test]
fn snapshot_sees_published_state_only() {
    let mut tree = small_tree();
    for i in 0..100 {
        tree.insert(&key(i), b"v1").unwrap();
    }
    tree.enable_snapshots();
    let reader = tree.reader();

    let snap = reader.snapshot();
    assert_eq!(snap.len(), 100);

    // Unpublished writer progress is invisible to old *and new* snapshots.
    for i in 100..150 {
        tree.insert(&key(i), b"v1").unwrap();
    }
    tree.insert(&key(7), b"v2").unwrap();
    assert_eq!(reader.read(&snap).scan_all().unwrap().len(), 100);
    assert_eq!(
        reader.read(&snap).get(&key(7)).unwrap(),
        Some(b"v1".to_vec()),
        "snapshot must see the pre-mutation value"
    );
    let snap2 = reader.snapshot();
    assert_eq!(snap2.len(), 100, "publish has not happened yet");

    tree.publish().unwrap();
    let snap3 = reader.snapshot();
    assert_eq!(snap3.len(), 150);
    assert_eq!(
        reader.read(&snap3).get(&key(7)).unwrap(),
        Some(b"v2".to_vec())
    );
    // The old snapshot still answers from its own epoch.
    assert_eq!(reader.read(&snap).scan_all().unwrap().len(), 100);
}

#[test]
fn snapshot_survives_total_rewrite() {
    let mut tree = small_tree();
    let original: Vec<(Vec<u8>, Vec<u8>)> = (0..500).map(|i| (key(i), b"orig".to_vec())).collect();
    tree.bulk_replace(original.clone()).unwrap();
    tree.enable_snapshots();
    let reader = tree.reader();
    let snap = reader.snapshot();

    // Delete everything and insert a disjoint key set, publishing along
    // the way: the snapshot must keep answering from its own epoch even
    // after multiple newer publishes.
    for i in 0..500 {
        tree.delete(&key(i)).unwrap();
        if i % 100 == 99 {
            tree.publish().unwrap();
        }
    }
    for i in 1000..1200 {
        tree.insert(&key(i), b"new").unwrap();
    }
    tree.publish().unwrap();

    assert_eq!(reader.read(&snap).scan_all().unwrap(), original);
    assert!(
        tree.tracker().version_count() > 0,
        "a total rewrite under a live snapshot must preserve versions"
    );

    // Newer snapshot sees only the new world.
    let snap2 = reader.snapshot();
    let now = reader.read(&snap2).scan_all().unwrap();
    assert_eq!(now.len(), 200);
    assert!(now.iter().all(|(_, v)| v == b"new"));
}

#[test]
fn reclamation_frees_everything_after_last_snapshot_drops() {
    let mut tree = small_tree();
    tree.bulk_replace((0..500).map(|i| (key(i), Vec::new())))
        .unwrap();
    tree.enable_snapshots();
    let reader = tree.reader();
    let snap = reader.snapshot();

    for i in 0..500 {
        if i % 10 != 9 {
            tree.delete(&key(i)).unwrap();
        }
    }
    tree.publish().unwrap();
    assert!(
        tree.tracker().pending_frees() > 0,
        "merges under a live snapshot must defer their frees"
    );

    drop(snap);
    tree.publish().unwrap();
    assert_eq!(tree.tracker().pending_frees(), 0);
    assert_eq!(tree.tracker().version_count(), 0);
    assert_eq!(tree.tracker().active_snapshots(), 0);

    // No page leaks: every live store page is a reachable tree node.
    let stats = tree.verify().unwrap();
    assert_eq!(tree.pool().live_pages(), stats.total_nodes());
}

#[test]
fn long_held_snapshot_pins_pages_not_epochs() {
    let mut tree = small_tree();
    for i in 0..200 {
        tree.insert(&key(i), b"v0").unwrap();
    }
    tree.enable_snapshots();
    let reader = tree.reader();
    let snap = reader.snapshot();

    // A serving process can hold a reader snapshot across hundreds of
    // writer epochs. Same-size overwrites keep the page set stable, so the
    // version store must converge to at most one preserved pre-image per
    // page — not one per publish interval survived.
    let mut counts = Vec::new();
    for round in 0..120u32 {
        for i in 0..10u32 {
            tree.insert(&key((i * 17) % 200), format!("r{round:04}").as_bytes())
                .unwrap();
        }
        tree.publish().unwrap();
        counts.push(tree.tracker().version_count());
    }
    let max = *counts.iter().max().unwrap();
    assert!(
        max <= tree.pool().live_pages(),
        "version store pinned {max} versions for one snapshot over \
         {} live pages — growing with epochs, not pages",
        tree.pool().live_pages()
    );
    assert_eq!(
        counts[30], counts[119],
        "version count must reach a steady state while the snapshot is held"
    );

    // The pinned snapshot still reads its own epoch exactly.
    let view = reader.read(&snap);
    assert_eq!(view.scan_all().unwrap().len(), 200);
    assert_eq!(view.get(&key(0)).unwrap(), Some(b"v0".to_vec()));

    // Refresh the snapshot (drop + re-pin, the server's per-query
    // pattern): the next publish must revert the footprint completely.
    drop(snap);
    let fresh = reader.snapshot();
    tree.publish().unwrap();
    assert_eq!(
        tree.tracker().version_count(),
        0,
        "footprint did not revert after the oldest snapshot was refreshed"
    );
    assert_eq!(tree.tracker().pending_frees(), 0);
    assert_eq!(
        reader.read(&fresh).get(&key(0)).unwrap(),
        Some(b"r0119".to_vec())
    );
}

#[test]
fn refresh_reverts_deferred_frees_from_structural_churn() {
    let mut tree = small_tree();
    tree.bulk_replace((0..600).map(|i| (key(i), Vec::new())))
        .unwrap();
    tree.enable_snapshots();
    let reader = tree.reader();
    let snap = reader.snapshot();
    let pages_before = tree.pool().live_pages();

    // Structural churn under a pinned snapshot: deletes merge nodes and
    // defer their frees; the snapshot keeps every freed page live.
    for i in 0..600 {
        if i % 5 != 0 {
            tree.delete(&key(i)).unwrap();
        }
    }
    tree.publish().unwrap();
    assert!(tree.tracker().pending_frees() > 0);
    assert!(tree.pool().live_pages() >= pages_before - 1);
    assert_eq!(reader.read(&snap).scan_all().unwrap().len(), 600);

    // Refreshing the oldest (only) snapshot releases every deferred page:
    // live pages revert to exactly the surviving tree's nodes.
    drop(snap);
    let fresh = reader.snapshot();
    tree.publish().unwrap();
    assert_eq!(tree.tracker().pending_frees(), 0);
    assert_eq!(tree.tracker().version_count(), 0);
    let stats = tree.verify().unwrap();
    assert_eq!(
        tree.pool().live_pages(),
        stats.total_nodes(),
        "deferred frees survived the snapshot refresh"
    );
    assert_eq!(reader.read(&fresh).scan_all().unwrap().len(), 120);
}

#[test]
fn concurrent_scanners_match_model_per_epoch() {
    let mut tree = small_tree();
    tree.enable_snapshots();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    // expected[epoch] is recorded *before* the publish that exposes that
    // epoch, so scanners can never observe an epoch without expectations.
    type EpochAnswers = BTreeMap<u64, Vec<(Vec<u8>, Vec<u8>)>>;
    let expected: Mutex<EpochAnswers> = Mutex::new(BTreeMap::new());
    expected.lock().unwrap().insert(tree.epoch(), Vec::new());

    let reader = tree.reader();
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..4 {
            let reader = reader.clone();
            let expected = &expected;
            workers.push(scope.spawn(move || {
                let mut scans = 0u32;
                while scans < 60 {
                    let snap = reader.snapshot();
                    let got = reader.read(&snap).scan_all().unwrap();
                    let want = expected
                        .lock()
                        .unwrap()
                        .get(&snap.epoch())
                        .cloned()
                        .expect("scanned an epoch that was never published");
                    assert_eq!(got, want, "scan diverged at epoch {}", snap.epoch());
                    scans += 1;
                }
            }));
        }

        // Mutator: batches of inserts/deletes, then record-and-publish.
        let mut seed = 0x9E3779B9u64;
        for round in 0..40 {
            for _ in 0..20 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(round);
                let k = key((seed >> 33) as u32 % 300);
                if seed.is_multiple_of(3) {
                    model.remove(&k);
                    tree.delete(&k).unwrap();
                } else {
                    let v = seed.to_le_bytes().to_vec();
                    model.insert(k.clone(), v.clone());
                    tree.insert(&k, &v).unwrap();
                }
            }
            let snapshot_model: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            expected
                .lock()
                .unwrap()
                .insert(tree.epoch(), snapshot_model);
            tree.publish().unwrap();
        }
        for w in workers {
            w.join().unwrap();
        }
    });

    // Quiesced: a final publish reclaims everything.
    tree.publish().unwrap();
    assert_eq!(tree.tracker().pending_frees(), 0);
    let stats = tree.verify().unwrap();
    assert_eq!(tree.pool().live_pages(), stats.total_nodes());
}
