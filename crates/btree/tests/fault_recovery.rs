//! Tree-level recovery torture: crash a WAL-backed tree at every commit
//! boundary and prove the recovered tree is structurally verifiable and
//! content-identical to the last committed state; and prove that silent
//! page damage under a checksummed store surfaces through `verify()` as a
//! typed corruption error instead of a malformed-tree panic or a wrong
//! answer.

use std::collections::BTreeMap;

use btree::{BTree, BTreeConfig};
use pagestore::{BufferPool, ChecksumStore, MemStore, PageStore, WalStore, TRAILER_LEN};

const PS: usize = 256;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("btree_fault_{}_{}", std::process::id(), name));
    p
}

fn key(i: usize) -> Vec<u8> {
    format!("key-{i:06}").into_bytes()
}

/// Crash the tree after each commit boundary in turn — with an extra
/// flushed-but-uncommitted tail of mutations in flight — replay the WAL,
/// reattach at the committed root, and check `verify()` plus exact content
/// equality against a shadow map of the last commit.
#[test]
fn crash_at_every_commit_boundary_recovers_verifiable_tree() {
    const BATCHES: usize = 6;
    const PER_BATCH: usize = 120;
    for crash_after in 0..BATCHES {
        let path = tmp(&format!("crash{crash_after}"));
        let _ = std::fs::remove_file(&path);
        let store = WalStore::create(MemStore::new(PS), &path).unwrap();
        let pool = BufferPool::new(store, 1 << 12);
        let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
        let mut shadow: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut committed = (tree.root(), tree.len(), shadow.clone());
        for b in 0..=crash_after {
            for j in 0..PER_BATCH {
                let i = b * PER_BATCH + j;
                if i >= 3 && i.is_multiple_of(5) {
                    let victim = key(i - 3);
                    tree.delete(&victim).unwrap();
                    shadow.remove(&victim);
                }
                let k = key(i);
                tree.insert(&k, &(i as u32).to_le_bytes()).unwrap();
                shadow.insert(k, (i as u32).to_le_bytes().to_vec());
            }
            tree.pool().flush_to_store_only().unwrap();
            tree.pool().store_lock().commit().unwrap();
            committed = (tree.root(), tree.len(), shadow.clone());
        }
        // Uncommitted tail: reaches the log but must not survive the crash.
        for j in 0..40 {
            let i = (crash_after + 1) * PER_BATCH + j;
            tree.insert(&key(i), b"uncommitted").unwrap();
        }
        tree.pool().flush_to_store_only().unwrap();

        // Crash: lose the WAL overlay, replay the log into the bare store.
        let inner = tree.into_pool().into_store().into_inner();
        let recovered = WalStore::open(inner, &path)
            .unwrap_or_else(|e| panic!("crash {crash_after}: replay failed: {e}"));
        let (root, len, want) = committed;
        let pool = BufferPool::new(recovered, 1 << 12);
        let tree = BTree::open(pool, BTreeConfig::default(), root, len);
        tree.verify()
            .unwrap_or_else(|e| panic!("crash {crash_after}: recovered tree unverifiable: {e}"));
        assert_eq!(tree.len(), len, "crash {crash_after}: committed len lost");
        let got = tree.scan_all().unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> = want.into_iter().collect();
        assert_eq!(
            got, want,
            "crash {crash_after}: recovered content diverges from last commit"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// Damage one raw page below a checksummed store: `verify()` must fail
/// with a typed corruption error naming the page — never a wrong answer,
/// never a decode panic.
#[test]
fn verify_surfaces_checksum_corruption() {
    let store = ChecksumStore::new(MemStore::new(PS + TRAILER_LEN));
    let pool = BufferPool::new(store, 64);
    let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
    for i in 0..800usize {
        tree.insert(&key(i), &(i as u32).to_le_bytes()).unwrap();
    }
    tree.verify().unwrap();
    let (root, len) = (tree.root(), tree.len());
    tree.pool().flush().unwrap();

    let mut store = tree.into_pool().into_store();
    let ids = store.live_page_ids();
    let victim = ids[ids.len() / 2];
    let mut full = vec![0u8; store.inner().page_size()];
    store.inner_mut().read(victim, &mut full).unwrap();
    full[7] ^= 0x20;
    store.inner_mut().write(victim, &full).unwrap();

    let pool = BufferPool::new(store, 64);
    let tree = BTree::open(pool, BTreeConfig::default(), root, len);
    let err = tree
        .verify()
        .expect_err("damaged page must fail verification");
    assert!(
        err.is_corruption(),
        "expected a corruption error, got: {err}"
    );
    assert!(
        err.to_string().contains(&victim.to_string()),
        "error must name the damaged page: {err}"
    );
}
