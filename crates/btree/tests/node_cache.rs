//! Regression tests for the frame-embedded decode cache.
//!
//! Decoded nodes now live on the buffer-pool frames themselves
//! (`PageRef::get_or_decode`), so the decode cache's capacity *is* the
//! pool's capacity: a node stays decoded exactly as long as its page is
//! resident, and rewriting the page bytes invalidates the cached decode
//! atomically. These tests pin both properties plus eviction correctness
//! under a pool far smaller than the tree.

use btree::{BTree, BTreeConfig, Capacity};
use pagestore::{BufferPool, MemStore};

fn build_tree(n: u32, pool_pages: usize) -> BTree<MemStore> {
    let pool = BufferPool::new(MemStore::new(1024), pool_pages);
    let config = BTreeConfig {
        capacity: Capacity::Entries(4),
        ..BTreeConfig::default()
    };
    BTree::bulk_load(
        pool,
        config,
        (0..n).map(|i| (format!("{i:06}").into_bytes(), Vec::new())),
    )
    .unwrap()
}

#[test]
fn root_keeps_its_decode_through_leaf_churn() {
    let tree = build_tree(400, 4096); // ~100 leaves, pool holds everything
    let root = tree.root();

    // Seek-heavy scan touching every third leaf: each descent re-references
    // the root, so its frame must stay resident and keep its decode while
    // leaves stream through.
    for i in (0..400u32).step_by(12) {
        let key = format!("{i:06}").into_bytes();
        let mut cur = tree.seek(&key).unwrap();
        let (k, _) = tree.cursor_entry(&mut cur).unwrap().unwrap();
        assert_eq!(k, key);
        let frame = tree
            .pool()
            .peek(root)
            .expect("root frame evicted during seek scan");
        assert!(
            frame.has_decoded(),
            "root lost its cached decode after seeking to {i}"
        );
    }
}

#[test]
fn eviction_keeps_lookups_correct() {
    // A pool much smaller than the tree forces constant eviction and
    // re-decoding; results must be unaffected.
    let tree = build_tree(300, 16);
    for i in (0..300u32).rev() {
        let key = format!("{i:06}").into_bytes();
        assert_eq!(tree.get(&key).unwrap(), Some(Vec::new()), "key {i}");
    }
    assert_eq!(tree.scan_all().unwrap().len(), 300);
}

#[test]
fn page_write_invalidates_cached_decode() {
    let mut tree = build_tree(100, 4096);
    // Warm the decode of the leaf holding key 000000.
    assert_eq!(tree.get(b"000000").unwrap(), Some(Vec::new()));
    let cur = tree.seek(b"000000").unwrap();
    let leaf = cur.leaf_page();
    drop(cur);
    assert!(tree.pool().peek(leaf).unwrap().has_decoded());

    // Mutate that leaf: the rewrite must clear the frame's decode slot so
    // no reader can ever observe a stale node.
    tree.insert(b"000000", b"updated").unwrap();
    assert!(
        !tree.pool().peek(leaf).unwrap().has_decoded(),
        "stale decode survived a page rewrite"
    );
    assert_eq!(tree.get(b"000000").unwrap(), Some(b"updated".to_vec()));
}

#[test]
fn invalidate_cache_drops_decodes_with_frames() {
    let tree = build_tree(200, 4096);
    assert_eq!(tree.scan_all().unwrap().len(), 200);
    let root = tree.root();
    assert!(tree.pool().peek(root).unwrap().has_decoded());
    tree.pool().flush().unwrap();
    tree.pool().invalidate_cache().unwrap();
    assert!(
        tree.pool().peek(root).is_none(),
        "invalidate_cache left the root frame resident"
    );
    // Everything still reads back correctly from the store.
    for i in [0u32, 57, 123, 199] {
        let key = format!("{i:06}").into_bytes();
        assert_eq!(tree.get(&key).unwrap(), Some(Vec::new()));
    }
}
