//! Regression tests for decoded-node cache eviction.
//!
//! The cache originally dropped *everything* once it hit capacity, so a
//! scan over more leaves than the cap evicted the root (and every hot
//! interior node) mid-descent, forcing a re-decode of the whole upper tree
//! on the next seek. Second-chance eviction must keep re-referenced nodes
//! alive through arbitrary leaf churn.

use btree::{BTree, BTreeConfig, Capacity};
use pagestore::{BufferPool, MemStore};

fn build_tree(n: u32) -> BTree<MemStore> {
    let pool = BufferPool::new(MemStore::new(1024), 4096);
    let config = BTreeConfig {
        capacity: Capacity::Entries(4),
        ..BTreeConfig::default()
    };
    BTree::bulk_load(
        pool,
        config,
        (0..n).map(|i| (format!("{i:06}").into_bytes(), Vec::new())),
    )
    .unwrap()
}

#[test]
fn root_survives_cache_overflowing_scan() {
    let mut tree = build_tree(400); // ~100 leaves, far above the cap
    let root = tree.root();
    tree.set_node_cache_capacity(8);

    // Seek-heavy scan touching every third leaf: each descent re-references
    // the root while leaves stream through the cache and overflow it many
    // times over.
    for i in (0..400u32).step_by(12) {
        let key = format!("{i:06}").into_bytes();
        let mut cur = tree.seek(&key).unwrap();
        let (k, _) = tree.cursor_entry(&mut cur).unwrap().unwrap();
        assert_eq!(k, key);
        assert!(
            tree.node_cache_contains(root),
            "root evicted from the node cache after seeking to {i}"
        );
    }
}

#[test]
fn eviction_keeps_lookups_correct() {
    // A cache of 2 forces constant eviction and re-decoding; results must
    // be unaffected.
    let mut tree = build_tree(300);
    tree.set_node_cache_capacity(2);
    for i in (0..300u32).rev() {
        let key = format!("{i:06}").into_bytes();
        assert_eq!(tree.get(&key).unwrap(), Some(Vec::new()), "key {i}");
    }
    assert_eq!(tree.scan_all().unwrap().len(), 300);
}

#[test]
fn zero_capacity_disables_caching() {
    let mut tree = build_tree(100);
    tree.set_node_cache_capacity(0);
    assert!(!tree.node_cache_contains(tree.root()));
    for i in 0..100u32 {
        let key = format!("{i:06}").into_bytes();
        assert_eq!(tree.get(&key).unwrap(), Some(Vec::new()));
    }
    assert!(!tree.node_cache_contains(tree.root()));
}

#[test]
fn capacity_shrink_evicts_down() {
    let mut tree = build_tree(200);
    // Warm the cache over the whole tree, then shrink hard; lookups keep
    // working and the cache obeys the new cap (indirectly: correctness).
    assert_eq!(tree.scan_all().unwrap().len(), 200);
    tree.set_node_cache_capacity(1);
    for i in [0u32, 57, 123, 199] {
        let key = format!("{i:06}").into_bytes();
        assert_eq!(tree.get(&key).unwrap(), Some(Vec::new()));
    }
}
