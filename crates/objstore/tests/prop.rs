//! Property tests for the order-preserving value encoding: byte order must
//! match semantic order for arbitrary values of each kind, and every
//! encoding must round-trip (including when embedded in a longer buffer).

use objstore::Value;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        // Finite floats only: NaN has no semantic order to compare against.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        ".{0,12}".prop_map(Value::Str),
    ]
}

fn semantic_lt(a: &Value, b: &Value) -> Option<bool> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x < y),
        (Value::Bool(x), Value::Bool(y)) => Some(x < y),
        (Value::Float(x), Value::Float(y)) => Some(x < y),
        (Value::Str(x), Value::Str(y)) => Some(x.as_bytes() < y.as_bytes()),
        _ => None,
    }
}

proptest! {
    #[test]
    fn roundtrip_with_trailing_context(v in arb_value(), junk in proptest::collection::vec(1u8..=255, 0..8)) {
        let enc = v.encode_ordered().unwrap();
        // Standalone.
        let (back, used) = Value::decode_ordered(&enc).unwrap();
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(used, enc.len());
        // Followed by the key field separator and arbitrary non-0xFF data
        // (the shape inside real index keys).
        let mut key = enc.clone();
        key.push(0x00);
        key.extend(junk);
        let (back, used) = Value::decode_ordered(&key).unwrap();
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(used, enc.len());
    }

    #[test]
    fn byte_order_matches_semantic_order(a in arb_value(), b in arb_value()) {
        let ea = a.encode_ordered().unwrap();
        let eb = b.encode_ordered().unwrap();
        if let Some(lt) = semantic_lt(&a, &b) {
            if lt {
                prop_assert!(ea < eb, "{a:?} < {b:?} but bytes disagree");
            }
            if let Some(true) = semantic_lt(&b, &a) {
                prop_assert!(eb < ea);
            }
        }
    }

    #[test]
    fn equal_values_encode_identically(v in arb_value()) {
        let a = v.encode_ordered().unwrap();
        let b = v.clone().encode_ordered().unwrap();
        prop_assert_eq!(a, b);
    }
}
