//! Flat serialization of an [`ObjectStore`] (schema + objects).
//!
//! The index side of the system persists itself through the B-tree page
//! file (see `uindex::catalog`); this module provides the matching
//! byte-format for the object base so a whole database can be saved and
//! reopened. The format is a simple length-prefixed record stream with a
//! magic/version header and a CRC-protected... kept deliberately simple:
//! corruption surfaces as a decode error, not UB.

use schema::{AttrId, AttrType, ClassId, Schema};

use crate::object::ObjectStore;
use crate::oid::Oid;
use crate::value::Value;
use crate::{Error, Result};

const MAGIC: &[u8; 8] = b"UIDXOBJ1";

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Error::UnknownAttr("truncated object file".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::UnknownAttr("truncated object file".into()))?;
        self.pos += 4;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| Error::UnknownAttr("truncated object file".into()))?;
        self.pos += 8;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| Error::UnknownAttr("truncated object file".into()))?;
        self.pos += n;
        String::from_utf8(b.to_vec())
            .map_err(|_| Error::UnknownAttr("non-utf8 string in object file".into()))
    }
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(0);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(1);
            put_str(buf, s);
        }
        Value::Float(f) => {
            buf.push(2);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            buf.push(3);
            buf.push(u8::from(*b));
        }
        Value::Ref(o) => {
            buf.push(4);
            put_u32(buf, o.0);
        }
        Value::RefSet(os) => {
            buf.push(5);
            put_u32(buf, os.len() as u32);
            for o in os {
                put_u32(buf, o.0);
            }
        }
    }
}

fn get_value(r: &mut Reader) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Int(r.u64()? as i64),
        1 => Value::Str(r.str()?),
        2 => Value::Float(f64::from_bits(r.u64()?)),
        3 => Value::Bool(r.u8()? != 0),
        4 => Value::Ref(Oid(r.u32()?)),
        5 => {
            let n = r.u32()? as usize;
            let mut os = Vec::with_capacity(n);
            for _ in 0..n {
                os.push(Oid(r.u32()?));
            }
            Value::RefSet(os)
        }
        _ => return Err(Error::UnknownAttr("bad value tag in object file".into())),
    })
}

impl ObjectStore {
    /// Serialize schema + all objects to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        let schema = self.schema();
        // Schema section.
        put_u32(&mut buf, schema.num_classes() as u32);
        for class in schema.class_ids() {
            put_str(&mut buf, schema.class_name(class));
            let parents = schema.parents(class);
            put_u32(&mut buf, parents.len() as u32);
            for p in parents {
                put_u32(&mut buf, p.0);
            }
            let attrs: Vec<_> = schema.own_attrs(class).collect();
            put_u32(&mut buf, attrs.len() as u32);
            for (_, name, ty) in attrs {
                put_str(&mut buf, name);
                let (tag, target) = match ty {
                    AttrType::Int => (0u8, 0u32),
                    AttrType::Str => (1, 0),
                    AttrType::Float => (2, 0),
                    AttrType::Bool => (3, 0),
                    AttrType::Ref(c) => (4, c.0),
                    AttrType::RefSet(c) => (5, c.0),
                };
                buf.push(tag);
                put_u32(&mut buf, target);
            }
        }
        // Object section.
        let oids: Vec<Oid> = self.oids().collect();
        put_u32(&mut buf, oids.len() as u32);
        for oid in oids {
            let obj = self.get(oid).expect("live oid");
            put_u32(&mut buf, oid.0);
            put_u32(&mut buf, obj.class().0);
            let attrs: Vec<_> = obj.attrs().collect();
            put_u32(&mut buf, attrs.len() as u32);
            for ((decl, attr), value) in attrs {
                put_u32(&mut buf, decl.0);
                put_u32(&mut buf, attr.0);
                put_value(&mut buf, value);
            }
        }
        buf
    }

    /// Rebuild a store from [`ObjectStore::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<ObjectStore> {
        if bytes.get(..8) != Some(MAGIC.as_slice()) {
            return Err(Error::UnknownAttr("bad object file magic".into()));
        }
        let mut r = Reader { buf: bytes, pos: 8 };
        // Schema.
        let n_classes = r.u32()? as usize;
        struct RawClass {
            name: String,
            parents: Vec<u32>,
            attrs: Vec<(String, u8, u32)>,
        }
        let mut raw = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            let name = r.str()?;
            let np = r.u32()? as usize;
            let mut parents = Vec::with_capacity(np);
            for _ in 0..np {
                parents.push(r.u32()?);
            }
            let na = r.u32()? as usize;
            let mut attrs = Vec::with_capacity(na);
            for _ in 0..na {
                let aname = r.str()?;
                let tag = r.u8()?;
                let target = r.u32()?;
                attrs.push((aname, tag, target));
            }
            raw.push(RawClass {
                name,
                parents,
                attrs,
            });
        }
        let mut schema = Schema::new();
        for c in &raw {
            match c.parents.first() {
                None => schema.add_class(&c.name)?,
                Some(&p) => schema.add_subclass(&c.name, ClassId(p))?,
            };
        }
        for (i, c) in raw.iter().enumerate() {
            for &extra in c.parents.iter().skip(1) {
                schema.add_parent(ClassId(i as u32), ClassId(extra))?;
            }
        }
        for (i, c) in raw.iter().enumerate() {
            for (aname, tag, target) in &c.attrs {
                let ty = match tag {
                    0 => AttrType::Int,
                    1 => AttrType::Str,
                    2 => AttrType::Float,
                    3 => AttrType::Bool,
                    4 => AttrType::Ref(ClassId(*target)),
                    5 => AttrType::RefSet(ClassId(*target)),
                    _ => return Err(Error::UnknownAttr("bad attr tag".into())),
                };
                schema.add_attr(ClassId(i as u32), aname, ty)?;
            }
        }
        // Objects: create with explicit oids, then set attrs (two passes so
        // references always point at existing objects).
        let mut store = ObjectStore::new(schema);
        let n_objects = r.u32()? as usize;
        let mut attr_sets: Vec<(Oid, ClassId, AttrId, Value)> = Vec::new();
        for _ in 0..n_objects {
            let oid = Oid(r.u32()?);
            let class = ClassId(r.u32()?);
            store.create_with_oid(oid, class)?;
            let na = r.u32()? as usize;
            for _ in 0..na {
                let decl = ClassId(r.u32()?);
                let attr = AttrId(r.u32()?);
                let value = get_value(&mut r)?;
                attr_sets.push((oid, decl, attr, value));
            }
        }
        for (oid, decl, attr, value) in attr_sets {
            let name = store.schema().attr_name(decl, attr).to_string();
            store.set_attr(oid, &name, value)?;
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::AttrType;

    fn sample() -> ObjectStore {
        let mut s = Schema::new();
        let emp = s.add_class("Employee").unwrap();
        s.add_attr(emp, "Age", AttrType::Int).unwrap();
        s.add_attr(emp, "Name", AttrType::Str).unwrap();
        let veh = s.add_class("Vehicle").unwrap();
        s.add_attr(veh, "Owner", AttrType::Ref(emp)).unwrap();
        s.add_attr(veh, "CoOwners", AttrType::RefSet(emp)).unwrap();
        s.add_attr(veh, "Weight", AttrType::Float).unwrap();
        s.add_attr(veh, "Electric", AttrType::Bool).unwrap();
        let sport = s.add_subclass("SportsCar", veh).unwrap();
        let mut db = ObjectStore::new(s);
        let e1 = db.create(emp).unwrap();
        db.set_attr(e1, "Age", Value::Int(44)).unwrap();
        db.set_attr(e1, "Name", Value::Str("Ada".into())).unwrap();
        let e2 = db.create(emp).unwrap();
        db.set_attr(e2, "Age", Value::Int(-1)).unwrap();
        let v = db.create(sport).unwrap();
        db.set_attr(v, "Owner", Value::Ref(e1)).unwrap();
        db.set_attr(v, "CoOwners", Value::RefSet(vec![e1, e2]))
            .unwrap();
        db.set_attr(v, "Weight", Value::Float(1234.5)).unwrap();
        db.set_attr(v, "Electric", Value::Bool(true)).unwrap();
        db
    }

    #[test]
    fn roundtrip() {
        let db = sample();
        let bytes = db.to_bytes();
        let back = ObjectStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), db.len());
        for oid in db.oids() {
            let a = db.get(oid).unwrap();
            let b = back.get(oid).unwrap();
            assert_eq!(a.class(), b.class());
            let av: Vec<_> = a.attrs().collect();
            let bv: Vec<_> = b.attrs().collect();
            assert_eq!(av.len(), bv.len());
            for ((ka, va), (kb, vb)) in av.iter().zip(&bv) {
                assert_eq!(ka, kb);
                assert_eq!(va, vb);
            }
        }
        // Reverse-reference index is rebuilt too.
        let e1 = Oid(1);
        assert_eq!(back.referrers(e1).len(), db.referrers(e1).len());
        // Fresh oids do not collide with reloaded ones.
        let mut back = back;
        let emp = back.schema().class_by_name("Employee").unwrap();
        let fresh = back.create(emp).unwrap();
        assert!(fresh.0 > 3);
    }

    #[test]
    fn garbage_rejected() {
        assert!(ObjectStore::from_bytes(b"junk").is_err());
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(ObjectStore::from_bytes(&bytes).is_err());
    }
}
