use std::fmt;

/// An object identifier: 4 bytes, matching the paper's experiment setup
/// ("objects ... referenced by 4 bytes OIDs").
///
/// The big-endian byte encoding preserves numeric order, so OID runs
/// cluster in index keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u32);

impl Oid {
    /// Width of the byte encoding.
    pub const LEN: usize = 4;

    /// Big-endian byte encoding.
    #[inline]
    pub fn to_bytes(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Decode from big-endian bytes.
    #[inline]
    pub fn from_bytes(b: [u8; 4]) -> Self {
        Oid(u32::from_be_bytes(b))
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({})", self.0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_order() {
        for v in [0u32, 1, 255, 65_536, u32::MAX] {
            assert_eq!(Oid::from_bytes(Oid(v).to_bytes()), Oid(v));
        }
        assert!(Oid(1).to_bytes() < Oid(2).to_bytes());
        assert!(Oid(255).to_bytes() < Oid(256).to_bytes());
    }
}
