//! Object store: OIDs, typed attribute values, class extents.
//!
//! The substrate the indexes index. Objects are instances of schema classes
//! holding typed attribute values; single-valued reference attributes are
//! the paper's m:1 REF relationships ("a vehicle is manufactured-by one
//! company"), multi-valued references cover the §4.3 discussion. The store
//! maintains:
//!
//! * per-class **extents** (direct and deep, i.e. including sub-classes);
//! * a **reverse-reference index** (`referrers`) — needed by path-index
//!   maintenance when an object in the middle of a path changes (the
//!   paper's "a President switches companies" example);
//! * referential-integrity checks on attribute assignment and deletion.
//!
//! [`Value::encode_ordered`] provides the order-preserving byte encoding
//! index keys embed: integers sort numerically, strings lexicographically,
//! floats in IEEE total order — and the encodings are self-delimiting so a
//! composite index key can be decoded unambiguously.

mod object;
mod oid;
mod persist;
mod value;

pub use object::{Object, ObjectStore};
pub use oid::Oid;
pub use value::{Value, ValueKind};

use std::fmt;

use schema::ClassId;

/// Errors from object-store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// OID does not exist (or was deleted).
    UnknownOid(Oid),
    /// Attribute does not exist on the object's class.
    UnknownAttr(String),
    /// Value type does not match the attribute's declared type.
    TypeMismatch {
        /// The attribute that was assigned.
        attr: String,
        /// What the schema declares.
        expected: String,
        /// What was provided.
        got: String,
    },
    /// A reference points at a missing object or one of the wrong class.
    BadReference(Oid),
    /// Deleting an object still referenced by others.
    StillReferenced(Oid),
    /// Class id not part of the schema.
    UnknownClass(ClassId),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownOid(o) => write!(f, "unknown oid {o}"),
            Error::UnknownAttr(a) => write!(f, "unknown attribute {a:?}"),
            Error::TypeMismatch {
                attr,
                expected,
                got,
            } => write!(f, "attribute {attr:?} expects {expected}, got {got}"),
            Error::BadReference(o) => write!(f, "bad reference to {o}"),
            Error::StillReferenced(o) => write!(f, "object {o} is still referenced"),
            Error::UnknownClass(c) => write!(f, "unknown class {c:?}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<schema::Error> for Error {
    fn from(e: schema::Error) -> Self {
        Error::UnknownAttr(format!("schema error during reload: {e}"))
    }
}

/// Result alias for object-store operations.
pub type Result<T> = std::result::Result<T, Error>;
