//! Typed values and their order-preserving, self-delimiting byte encoding.

use std::cmp::Ordering;
use std::fmt;

use crate::oid::Oid;

/// Type tags, chosen so encodings of different kinds do not collide and
/// sort by kind first.
const TAG_BOOL: u8 = 0x08;
const TAG_INT: u8 = 0x10;
const TAG_FLOAT: u8 = 0x18;
const TAG_STR: u8 = 0x20;

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Single-valued reference (the m:1 REF relationship).
    Ref(Oid),
    /// Multi-valued reference; kept sorted and deduplicated.
    RefSet(Vec<Oid>),
}

/// The kind of a [`Value`], for type checking and error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Integer.
    Int,
    /// String.
    Str,
    /// Float.
    Float,
    /// Boolean.
    Bool,
    /// Single reference.
    Ref,
    /// Reference set.
    RefSet,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Int => "Int",
            ValueKind::Str => "Str",
            ValueKind::Float => "Float",
            ValueKind::Bool => "Bool",
            ValueKind::Ref => "Ref",
            ValueKind::RefSet => "RefSet",
        };
        f.write_str(s)
    }
}

impl Value {
    /// The value's kind.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Str(_) => ValueKind::Str,
            Value::Float(_) => ValueKind::Float,
            Value::Bool(_) => ValueKind::Bool,
            Value::Ref(_) => ValueKind::Ref,
            Value::RefSet(_) => ValueKind::RefSet,
        }
    }

    /// Whether this value can be an index key (references cannot).
    pub fn is_indexable(&self) -> bool {
        !matches!(self, Value::Ref(_) | Value::RefSet(_))
    }

    /// Order-preserving, self-delimiting encoding of an indexable value.
    ///
    /// Properties: for two values of the same kind, byte order equals value
    /// order (floats use IEEE total order); and an encoding followed by any
    /// byte other than `0xFF` (index keys follow values with the `0x00`
    /// field separator) decodes unambiguously, so a composite key can be
    /// parsed left to right.
    ///
    /// Returns `None` for reference values.
    pub fn encode_ordered(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(10);
        match self {
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(TAG_INT);
                // Flip the sign bit: negative < positive in unsigned order.
                out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
            }
            Value::Float(x) => {
                out.push(TAG_FLOAT);
                // IEEE-754 total order trick.
                let bits = x.to_bits();
                let ordered = if bits >> 63 == 1 {
                    !bits
                } else {
                    bits | (1 << 63)
                };
                out.extend_from_slice(&ordered.to_be_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                // 0x00 bytes escaped as 0x00 0xFF; terminated with 0x00.
                for &b in s.as_bytes() {
                    out.push(b);
                    if b == 0 {
                        out.push(0xFF);
                    }
                }
                out.push(0x00);
            }
            Value::Ref(_) | Value::RefSet(_) => return None,
        }
        Some(out)
    }

    /// Decode an encoding produced by [`Value::encode_ordered`], returning
    /// the value and the number of bytes consumed.
    pub fn decode_ordered(bytes: &[u8]) -> Option<(Value, usize)> {
        match *bytes.first()? {
            TAG_BOOL => {
                let b = *bytes.get(1)?;
                Some((Value::Bool(b != 0), 2))
            }
            TAG_INT => {
                let raw = u64::from_be_bytes(bytes.get(1..9)?.try_into().ok()?);
                Some((Value::Int((raw ^ (1 << 63)) as i64), 9))
            }
            TAG_FLOAT => {
                let ordered = u64::from_be_bytes(bytes.get(1..9)?.try_into().ok()?);
                let bits = if ordered >> 63 == 1 {
                    ordered & !(1 << 63)
                } else {
                    !ordered
                };
                Some((Value::Float(f64::from_bits(bits)), 9))
            }
            TAG_STR => {
                let mut s = Vec::new();
                let mut i = 1;
                loop {
                    let b = *bytes.get(i)?;
                    i += 1;
                    if b == 0 {
                        match bytes.get(i) {
                            Some(0xFF) => {
                                s.push(0);
                                i += 1;
                            }
                            _ => break,
                        }
                    } else {
                        s.push(b);
                    }
                }
                Some((Value::Str(String::from_utf8(s).ok()?), i))
            }
            _ => None,
        }
    }

    /// Total order consistent with [`Value::encode_ordered`] for indexable
    /// values (used by in-memory baselines and tests).
    pub fn cmp_ordered(&self, other: &Value) -> Ordering {
        match (self.encode_ordered(), other.encode_ordered()) {
            (Some(a), Some(b)) => a.cmp(&b),
            _ => Ordering::Equal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let enc = v.encode_ordered().unwrap();
        let (back, used) = Value::decode_ordered(&enc).unwrap();
        assert_eq!(&back, v);
        assert_eq!(used, enc.len());
        // Self-delimiting even with trailing junk.
        let mut padded = enc.clone();
        padded.extend_from_slice(&[0xAB, 0xCD]);
        let (back2, used2) = Value::decode_ordered(&padded).unwrap();
        assert_eq!(&back2, v);
        assert_eq!(used2, enc.len());
    }

    #[test]
    fn roundtrips() {
        for v in [
            Value::Int(0),
            Value::Int(42),
            Value::Int(-42),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Bool(true),
            Value::Bool(false),
            Value::Float(0.0),
            Value::Float(-1.5),
            Value::Float(1e300),
            Value::Float(f64::NEG_INFINITY),
            Value::Str(String::new()),
            Value::Str("hello".into()),
            Value::Str("with\0nul\0bytes".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn int_order_preserved() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 7, 1_000_000, i64::MAX];
        for w in vals.windows(2) {
            let a = Value::Int(w[0]).encode_ordered().unwrap();
            let b = Value::Int(w[1]).encode_ordered().unwrap();
            assert!(a < b, "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn float_order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            f64::INFINITY,
        ];
        for i in 0..vals.len() {
            for j in i + 1..vals.len() {
                let a = Value::Float(vals[i]).encode_ordered().unwrap();
                let b = Value::Float(vals[j]).encode_ordered().unwrap();
                // -0.0 and 0.0 encode distinctly (total order) but both
                // comparisons must not invert.
                if vals[i] < vals[j] {
                    assert!(a < b, "{} !< {}", vals[i], vals[j]);
                } else {
                    assert!(a <= b);
                }
            }
        }
    }

    #[test]
    fn string_order_preserved_with_nuls() {
        let vals = ["", "a", "a\0", "a\0b", "ab", "b"];
        for w in vals.windows(2) {
            let a = Value::Str(w[0].into()).encode_ordered().unwrap();
            let b = Value::Str(w[1].into()).encode_ordered().unwrap();
            assert!(a < b, "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn decoding_unambiguous_in_key_context() {
        // In a composite index key every value is followed by the 0x00
        // field separator; decoding must stop at exactly the value's end.
        let strs = ["", "a", "ab", "a\0", "aa", "a\0\0b"];
        for s in strs {
            let v = Value::Str(s.into());
            let enc = v.encode_ordered().unwrap();
            let mut key = enc.clone();
            key.push(0x00); // field separator
            key.extend_from_slice(b"NEXTFIELD");
            let (back, used) = Value::decode_ordered(&key).unwrap();
            assert_eq!(back, v, "string {s:?}");
            assert_eq!(used, enc.len(), "string {s:?}");
        }
    }

    #[test]
    fn refs_not_indexable() {
        assert!(Value::Ref(Oid(1)).encode_ordered().is_none());
        assert!(Value::RefSet(vec![]).encode_ordered().is_none());
        assert!(Value::Int(1).is_indexable());
        assert!(!Value::Ref(Oid(1)).is_indexable());
    }

    #[test]
    fn kinds_sort_separately() {
        let b = Value::Bool(true).encode_ordered().unwrap();
        let i = Value::Int(i64::MIN).encode_ordered().unwrap();
        let f = Value::Float(f64::NEG_INFINITY).encode_ordered().unwrap();
        let s = Value::Str("".into()).encode_ordered().unwrap();
        assert!(b < i && i < f && f < s);
    }
}
