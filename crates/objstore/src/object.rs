//! The object store proper.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use schema::{AttrId, AttrType, ClassId, Schema};

use crate::oid::Oid;
use crate::value::{Value, ValueKind};
use crate::{Error, Result};

/// A stored object: its (most specific) class plus attribute values keyed by
/// the attribute's *declaring* class and id.
#[derive(Debug, Clone)]
pub struct Object {
    class: ClassId,
    attrs: BTreeMap<(ClassId, AttrId), Value>,
}

impl Object {
    /// The object's direct class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The attribute value declared at `(class, attr)`, if set.
    pub fn get(&self, class: ClassId, attr: AttrId) -> Option<&Value> {
        self.attrs.get(&(class, attr))
    }

    /// All set attributes.
    pub fn attrs(&self) -> impl Iterator<Item = (&(ClassId, AttrId), &Value)> {
        self.attrs.iter()
    }
}

/// An in-memory object base over a [`Schema`].
#[derive(Debug, Clone)]
pub struct ObjectStore {
    schema: Schema,
    objects: BTreeMap<Oid, Object>,
    extents: HashMap<ClassId, BTreeSet<Oid>>,
    /// target oid → referring (source oid, declaring class, attr).
    reverse: HashMap<Oid, BTreeSet<(Oid, ClassId, AttrId)>>,
    next_oid: u32,
}

impl ObjectStore {
    /// Create an empty store over `schema`.
    pub fn new(schema: Schema) -> Self {
        ObjectStore {
            schema,
            objects: BTreeMap::new(),
            extents: HashMap::new(),
            reverse: HashMap::new(),
            next_oid: 1,
        }
    }

    /// The schema objects conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable schema access (for evolution demos). Existing objects are
    /// unaffected; new classes start with empty extents.
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Create an object of `class` with no attributes set.
    pub fn create(&mut self, class: ClassId) -> Result<Oid> {
        if class.0 as usize >= self.schema.num_classes() {
            return Err(Error::UnknownClass(class));
        }
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        self.objects.insert(
            oid,
            Object {
                class,
                attrs: BTreeMap::new(),
            },
        );
        self.extents.entry(class).or_default().insert(oid);
        Ok(oid)
    }

    /// Create an object with an explicit OID (persistence reload path).
    /// Fails if the OID is taken; future fresh OIDs are allocated above it.
    pub fn create_with_oid(&mut self, oid: Oid, class: ClassId) -> Result<()> {
        if class.0 as usize >= self.schema.num_classes() {
            return Err(Error::UnknownClass(class));
        }
        if self.objects.contains_key(&oid) {
            return Err(Error::BadReference(oid));
        }
        self.objects.insert(
            oid,
            Object {
                class,
                attrs: BTreeMap::new(),
            },
        );
        self.extents.entry(class).or_default().insert(oid);
        self.next_oid = self.next_oid.max(oid.0 + 1);
        Ok(())
    }

    /// The object behind `oid`.
    pub fn get(&self, oid: Oid) -> Result<&Object> {
        self.objects.get(&oid).ok_or(Error::UnknownOid(oid))
    }

    /// The direct class of `oid`.
    pub fn class_of(&self, oid: Oid) -> Result<ClassId> {
        Ok(self.get(oid)?.class)
    }

    /// Whether `oid` exists.
    pub fn exists(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    fn expected_kind(ty: AttrType) -> &'static str {
        match ty {
            AttrType::Int => "Int",
            AttrType::Str => "Str",
            AttrType::Float => "Float",
            AttrType::Bool => "Bool",
            AttrType::Ref(_) => "Ref",
            AttrType::RefSet(_) => "RefSet",
        }
    }

    fn kind_matches(ty: AttrType, kind: ValueKind) -> bool {
        matches!(
            (ty, kind),
            (AttrType::Int, ValueKind::Int)
                | (AttrType::Str, ValueKind::Str)
                | (AttrType::Float, ValueKind::Float)
                | (AttrType::Bool, ValueKind::Bool)
                | (AttrType::Ref(_), ValueKind::Ref)
                | (AttrType::RefSet(_), ValueKind::RefSet)
        )
    }

    /// Set attribute `name` (resolved through inheritance) on `oid`,
    /// returning the previous value.
    ///
    /// Type-checks the value, validates reference targets (object must
    /// exist and be of the declared class or a sub-class), and maintains
    /// the reverse-reference index.
    pub fn set_attr(&mut self, oid: Oid, name: &str, mut value: Value) -> Result<Option<Value>> {
        let class = self.class_of(oid)?;
        let (decl, attr) = self
            .schema
            .resolve_attr(class, name)
            .ok_or_else(|| Error::UnknownAttr(name.to_string()))?;
        let ty = self.schema.attr_type(decl, attr);
        if !Self::kind_matches(ty, value.kind()) {
            return Err(Error::TypeMismatch {
                attr: name.to_string(),
                expected: Self::expected_kind(ty).to_string(),
                got: value.kind().to_string(),
            });
        }
        // Validate and normalize references.
        match (&mut value, ty) {
            (Value::Ref(t), AttrType::Ref(target_class)) => {
                self.check_ref(*t, target_class)?;
            }
            (Value::RefSet(ts), AttrType::RefSet(target_class)) => {
                ts.sort_unstable();
                ts.dedup();
                for t in ts.iter() {
                    self.check_ref(*t, target_class)?;
                }
            }
            _ => {}
        }
        // Unlink old reverse entries, link new ones.
        let old = self
            .objects
            .get_mut(&oid)
            .expect("checked")
            .attrs
            .insert((decl, attr), value.clone());
        if let Some(old_v) = &old {
            self.unlink(oid, decl, attr, old_v);
        }
        self.link(oid, decl, attr, &value);
        Ok(old)
    }

    fn check_ref(&self, target: Oid, target_class: ClassId) -> Result<()> {
        let tclass = self
            .objects
            .get(&target)
            .ok_or(Error::BadReference(target))?
            .class;
        if !self.schema.is_subclass_of(tclass, target_class) {
            return Err(Error::BadReference(target));
        }
        Ok(())
    }

    fn link(&mut self, source: Oid, decl: ClassId, attr: AttrId, value: &Value) {
        match value {
            Value::Ref(t) => {
                self.reverse
                    .entry(*t)
                    .or_default()
                    .insert((source, decl, attr));
            }
            Value::RefSet(ts) => {
                for t in ts {
                    self.reverse
                        .entry(*t)
                        .or_default()
                        .insert((source, decl, attr));
                }
            }
            _ => {}
        }
    }

    fn unlink(&mut self, source: Oid, decl: ClassId, attr: AttrId, value: &Value) {
        match value {
            Value::Ref(t) => {
                if let Some(set) = self.reverse.get_mut(t) {
                    set.remove(&(source, decl, attr));
                }
            }
            Value::RefSet(ts) => {
                for t in ts {
                    if let Some(set) = self.reverse.get_mut(t) {
                        set.remove(&(source, decl, attr));
                    }
                }
            }
            _ => {}
        }
    }

    /// Read attribute `name` (resolved through inheritance) on `oid`.
    pub fn attr(&self, oid: Oid, name: &str) -> Result<Option<&Value>> {
        let obj = self.get(oid)?;
        let (decl, attr) = self
            .schema
            .resolve_attr(obj.class, name)
            .ok_or_else(|| Error::UnknownAttr(name.to_string()))?;
        Ok(obj.get(decl, attr))
    }

    /// Follow a single-valued reference attribute.
    pub fn follow_ref(&self, oid: Oid, name: &str) -> Result<Option<Oid>> {
        match self.attr(oid, name)? {
            Some(Value::Ref(t)) => Ok(Some(*t)),
            _ => Ok(None),
        }
    }

    /// Delete `oid`. Fails with [`Error::StillReferenced`] if other objects
    /// reference it (pass `force = true` to leave dangling references, which
    /// index maintenance tests use).
    pub fn delete(&mut self, oid: Oid, force: bool) -> Result<Object> {
        if !self.exists(oid) {
            return Err(Error::UnknownOid(oid));
        }
        if !force && self.reverse.get(&oid).is_some_and(|s| !s.is_empty()) {
            return Err(Error::StillReferenced(oid));
        }
        let obj = self.objects.remove(&oid).expect("checked");
        for ((decl, attr), v) in &obj.attrs {
            self.unlink(oid, *decl, *attr, v);
        }
        self.extents
            .get_mut(&obj.class)
            .expect("in extent")
            .remove(&oid);
        Ok(obj)
    }

    /// Direct instances of `class` (no sub-classes), in OID order.
    pub fn extent(&self, class: ClassId) -> Vec<Oid> {
        self.extents
            .get(&class)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Instances of `class` and all its sub-classes, in OID order.
    pub fn extent_deep(&self, class: ClassId) -> Vec<Oid> {
        let mut out = BTreeSet::new();
        for c in self.schema.subtree(class) {
            if let Some(s) = self.extents.get(&c) {
                out.extend(s.iter().copied());
            }
        }
        out.into_iter().collect()
    }

    /// Objects referencing `target`, as (source oid, declaring class, attr).
    pub fn referrers(&self, target: Oid) -> Vec<(Oid, ClassId, AttrId)> {
        self.reverse
            .get(&target)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All live OIDs in order.
    pub fn oids(&self) -> impl Iterator<Item = Oid> + '_ {
        self.objects.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::AttrType;

    fn setup() -> (ObjectStore, ClassId, ClassId, ClassId) {
        let mut s = Schema::new();
        let emp = s.add_class("Employee").unwrap();
        s.add_attr(emp, "Age", AttrType::Int).unwrap();
        let com = s.add_class("Company").unwrap();
        s.add_attr(com, "Name", AttrType::Str).unwrap();
        s.add_attr(com, "President", AttrType::Ref(emp)).unwrap();
        let veh = s.add_class("Vehicle").unwrap();
        s.add_attr(veh, "Color", AttrType::Str).unwrap();
        s.add_attr(veh, "MadeBy", AttrType::Ref(com)).unwrap();
        (ObjectStore::new(s), emp, com, veh)
    }

    #[test]
    fn create_and_attrs() {
        let (mut db, emp, ..) = setup();
        let e = db.create(emp).unwrap();
        assert!(db.exists(e));
        assert_eq!(db.set_attr(e, "Age", Value::Int(50)).unwrap(), None);
        assert_eq!(db.attr(e, "Age").unwrap(), Some(&Value::Int(50)));
        assert_eq!(
            db.set_attr(e, "Age", Value::Int(51)).unwrap(),
            Some(Value::Int(50))
        );
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn type_checking() {
        let (mut db, emp, ..) = setup();
        let e = db.create(emp).unwrap();
        assert!(matches!(
            db.set_attr(e, "Age", Value::Str("old".into())),
            Err(Error::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.set_attr(e, "Salary", Value::Int(1)),
            Err(Error::UnknownAttr(_))
        ));
    }

    #[test]
    fn references_and_reverse_index() {
        let (mut db, emp, com, veh) = setup();
        let e = db.create(emp).unwrap();
        let c = db.create(com).unwrap();
        let v = db.create(veh).unwrap();
        db.set_attr(c, "President", Value::Ref(e)).unwrap();
        db.set_attr(v, "MadeBy", Value::Ref(c)).unwrap();
        assert_eq!(db.follow_ref(v, "MadeBy").unwrap(), Some(c));
        assert_eq!(db.referrers(e).len(), 1);
        assert_eq!(db.referrers(c).len(), 1);
        // Re-pointing updates the reverse index.
        let e2 = db.create(emp).unwrap();
        db.set_attr(c, "President", Value::Ref(e2)).unwrap();
        assert!(db.referrers(e).is_empty());
        assert_eq!(db.referrers(e2).len(), 1);
    }

    #[test]
    fn bad_references_rejected() {
        let (mut db, emp, com, veh) = setup();
        let e = db.create(emp).unwrap();
        let v = db.create(veh).unwrap();
        // Wrong class.
        assert!(matches!(
            db.set_attr(v, "MadeBy", Value::Ref(e)),
            Err(Error::BadReference(_))
        ));
        // Nonexistent target.
        let c = db.create(com).unwrap();
        assert!(matches!(
            db.set_attr(c, "President", Value::Ref(Oid(999))),
            Err(Error::BadReference(_))
        ));
    }

    #[test]
    fn delete_and_integrity() {
        let (mut db, emp, com, _) = setup();
        let e = db.create(emp).unwrap();
        let c = db.create(com).unwrap();
        db.set_attr(c, "President", Value::Ref(e)).unwrap();
        assert!(matches!(
            db.delete(e, false),
            Err(Error::StillReferenced(_))
        ));
        db.delete(c, false).unwrap();
        // Deleting the referrer unlinked the reverse entry.
        db.delete(e, false).unwrap();
        assert!(db.is_empty());
        assert!(matches!(db.delete(e, false), Err(Error::UnknownOid(_))));
    }

    #[test]
    fn extents_and_inheritance() {
        let mut s = Schema::new();
        let veh = s.add_class("Vehicle").unwrap();
        s.add_attr(veh, "Color", AttrType::Str).unwrap();
        let auto = s.add_subclass("Automobile", veh).unwrap();
        let compact = s.add_subclass("Compact", auto).unwrap();
        let mut db = ObjectStore::new(s);
        let v = db.create(veh).unwrap();
        let a = db.create(auto).unwrap();
        let k = db.create(compact).unwrap();
        assert_eq!(db.extent(veh), vec![v]);
        assert_eq!(db.extent_deep(veh), vec![v, a, k]);
        assert_eq!(db.extent_deep(auto), vec![a, k]);
        // Inherited attribute settable on the sub-class instance.
        db.set_attr(k, "Color", Value::Str("Red".into())).unwrap();
        assert_eq!(
            db.attr(k, "Color").unwrap(),
            Some(&Value::Str("Red".into()))
        );
    }

    #[test]
    fn refset_normalized() {
        let mut s = Schema::new();
        let emp = s.add_class("Employee").unwrap();
        let veh = s.add_class("Vehicle").unwrap();
        s.add_attr(emp, "Owns", AttrType::RefSet(veh)).unwrap();
        let mut db = ObjectStore::new(s);
        let e = db.create(emp).unwrap();
        let v1 = db.create(veh).unwrap();
        let v2 = db.create(veh).unwrap();
        db.set_attr(e, "Owns", Value::RefSet(vec![v2, v1, v2]))
            .unwrap();
        assert_eq!(
            db.attr(e, "Owns").unwrap(),
            Some(&Value::RefSet(vec![v1, v2]))
        );
        assert_eq!(db.referrers(v1).len(), 1);
        assert_eq!(db.referrers(v2).len(), 1);
    }
}
