//! Figure 5: exact-match queries, U-index (near / non-near sets) vs
//! CG-tree, over 8- and 40-set hierarchies and three key cardinalities.
//!
//! Usage: `cargo run --release -p bench --bin fig5`
//! (`OBJECTS` and `REPS` shrink the run for smoke tests).

use bench::{num_objects, run_figure, QueryKind};

fn main() {
    run_figure(
        "Figure 5 — Exact Match Query",
        QueryKind::Exact,
        num_objects(),
        51,
    );
}
