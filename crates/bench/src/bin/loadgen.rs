//! Serving-layer load generator: drives N concurrent clients over real
//! TCP with a seeded mixed UQL stream (about half through the prepared-
//! statement path), cross-checks **every** response byte-for-byte against
//! an in-process oracle, and writes `BENCH_serve.json` (p50/p99/p999
//! latency from the telemetry log₂ histograms, plus throughput and server
//! counters) at the repo root.
//!
//! Modes:
//!
//! - default: self-hosted — build the vehicle serve workload on both
//!   store tiers, serve each from an in-process server, measure both.
//! - `--smoke`: tiny configuration, no JSON write (the CI hook).
//! - `--save-db DIR`: build the workload database, save it for
//!   `uindex-cli serve`, and exit.
//! - `--addr HOST:PORT --db DIR`: external — drive an already-running
//!   server, with the oracle rebuilt from the saved database in DIR.
//! - `--live-stats` (self-hosted only): while driving, a poller thread
//!   polls the server's `Stats` frame and asserts the sampled counters
//!   stay consistent with the client-side oracle tallies — monotone
//!   across replies, sampled ≤ live (bounded drift), and exactly equal
//!   to the verified total at quiesce. The sampled timeline is written
//!   into `BENCH_serve.json` per tier.
//! - `--chaos`: the fault-survival harness. Per tier, a calm drive
//!   baselines the stack, then the same workload runs through a
//!   deterministic TCP fault proxy ([`bench::chaos`]) with storage
//!   faults (transient I/O + silent corruption) scheduled under the
//!   live server, driven by retrying clients. The invariant is **no
//!   wrong answer, ever** — every `Ok` is byte-checked against the
//!   oracle; errors only count against availability. Writes
//!   `BENCH_chaos.json` unless `--smoke`.
//! - `--chaos-drill --cli-bin PATH`: the crash-restart drill. Serves a
//!   saved database from a real `uindex-cli serve` child process behind
//!   the proxy, SIGKILLs it mid-load, restarts it, repoints the proxy,
//!   and requires clients to reconnect, re-prepare, and keep verifying
//!   answers — proving recovery end to end over real processes.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::BufRead as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::chaos::{ChaosAction, ChaosConfig, ChaosProxy, FaultEvent};
use pagestore::{Fault, FaultHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{Client, RetryClient, RetryPolicy, ServeOptions, ServeStats, Server, WireRow};
use telemetry::HistogramSnapshot;
use uindex::{Database, DatabaseReader, DiskDatabase, DiskOptions};

const SEED: u64 = 42;

#[derive(Clone, Copy)]
struct Config {
    clients: usize,
    requests_per_client: usize,
    vehicles: usize,
    workers: usize,
    max_inflight: usize,
}

impl Config {
    fn new(smoke: bool) -> Config {
        if smoke {
            Config {
                clients: 3,
                requests_per_client: 12,
                vehicles: 120,
                workers: 2,
                max_inflight: 16,
            }
        } else {
            Config {
                clients: 8,
                requests_per_client: 300,
                vehicles: 2000,
                workers: 4,
                max_inflight: 32,
            }
        }
    }
}

fn build_mem(cfg: &Config) -> Database {
    let (schema, classes) = workload::serve::schema();
    let mut db = Database::with_page_size(schema, 1024, 1 << 14).expect("mem database");
    workload::serve::populate(&mut db, &classes, SEED, cfg.vehicles).expect("populate");
    db
}

/// Expected wire rows per statement — the differential oracle. Uses the
/// identical [`WireRow::from_hit`] conversion the server uses, so any
/// divergence is a real engine/protocol bug, never an encoding artifact.
fn oracle<P: pagestore::PageStore>(reader: &DatabaseReader<P>) -> HashMap<String, Vec<WireRow>> {
    workload::serve::uql_families()
        .into_iter()
        .map(|stmt| {
            let q = reader.parse_uql(stmt).expect("oracle parse");
            let (hits, _) = reader.query(&q).expect("oracle query");
            let rows = hits
                .iter()
                .map(|h| WireRow::from_hit(h).expect("oracle row"))
                .collect();
            (stmt.to_string(), rows)
        })
        .collect()
}

struct DriveResult {
    wall_secs: f64,
    requests: u64,
    verified: u64,
    shed_seen: u64,
    latency: HistogramSnapshot,
}

/// Drive `cfg.clients` threads of mixed prepared/direct requests against
/// `addr`, verifying every successful response against the oracle.
/// Panics (non-zero exit) on the first divergence.
fn drive(addr: &str, expected: &HashMap<String, Vec<WireRow>>, cfg: &Config) -> DriveResult {
    let statements = workload::serve::uql_families();
    let started = Instant::now();
    let mut merged = telemetry::Snapshot::default();
    let mut requests = 0u64;
    let mut verified = 0u64;
    let mut shed_seen = 0u64;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.clients {
            let statements = statements.clone();
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64).wrapping_mul(0x9E3779B9));
                let mut client = Client::connect(addr).expect("connect");
                let prepared: Vec<u64> = statements
                    .iter()
                    .map(|s| client.prepare(s).expect("prepare"))
                    .collect();
                let hist = telemetry::histogram("serve.client.latency_us");
                let (mut reqs, mut ok, mut shed) = (0u64, 0u64, 0u64);
                for i in 0..cfg.requests_per_client {
                    let which = rng.gen_range(0..statements.len());
                    let stmt = statements[which];
                    let t0 = Instant::now();
                    let reply = if rng.gen_range(0..2) == 0 {
                        client.execute(prepared[which])
                    } else {
                        client.query(stmt)
                    };
                    hist.record(t0.elapsed().as_micros() as u64);
                    reqs += 1;
                    match reply {
                        Ok(reply) => {
                            assert_eq!(
                                reply.rows, expected[stmt],
                                "client {t} request {i}: server response diverged from \
                                 oracle for `{stmt}`"
                            );
                            ok += 1;
                        }
                        Err(e) if e.is_overloaded() => shed += 1,
                        Err(e) => panic!("client {t} request {i}: {e}"),
                    }
                }
                (reqs, ok, shed, telemetry::snapshot())
            }));
        }
        for h in handles {
            let (reqs, ok, shed, snap) = h.join().expect("client thread");
            requests += reqs;
            verified += ok;
            shed_seen += shed;
            merged.merge(&snap);
        }
    });

    let latency = merged
        .histograms
        .get("serve.client.latency_us")
        .cloned()
        .unwrap_or_default();
    DriveResult {
        wall_secs: started.elapsed().as_secs_f64(),
        requests,
        verified,
        shed_seen,
        latency,
    }
}

fn latency_json(h: &HistogramSnapshot) -> String {
    let mean = h.sum.checked_div(h.count).unwrap_or(0);
    // Percentiles are bucket upper bounds — a ≤2× overestimate by
    // construction (documented in docs/bench-format.md).
    format!(
        "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}",
        h.count,
        mean,
        h.percentile(0.50),
        h.percentile(0.99),
        h.percentile(0.999),
    )
}

fn stats_json(s: &ServeStats) -> String {
    format!(
        "{{\"connections\": {}, \"requests\": {}, \"queries\": {}, \"shed\": {}, \
         \"rows_sent\": {}, \"plan_cache_hits\": {}, \"plan_cache_misses\": {}}}",
        s.connections,
        s.requests,
        s.queries,
        s.shed,
        s.rows_sent,
        s.plan_cache_hits,
        s.plan_cache_misses,
    )
}

fn print_tier(tier: &str, r: &DriveResult) {
    println!(
        "{tier:<5} {:>8} reqs {:>10.0} req/s  p50 {:>6}us  p99 {:>6}us  p999 {:>6}us  \
         ({} verified, {} shed)",
        r.requests,
        r.requests as f64 / r.wall_secs.max(1e-9),
        r.latency.percentile(0.50),
        r.latency.percentile(0.99),
        r.latency.percentile(0.999),
        r.verified,
        r.shed_seen,
    );
}

fn ju64(v: &telemetry::json::Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        cur = cur.get(key).unwrap_or(&telemetry::json::Json::Null);
    }
    cur.as_u64().unwrap_or(0)
}

fn jf64(v: &telemetry::json::Json, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        cur = cur.get(key).unwrap_or(&telemetry::json::Json::Null);
    }
    cur.as_f64().unwrap_or(0.0)
}

/// One mid-run `Stats` observation.
struct Sample {
    t_ms: u64,
    tick: u64,
    cum_queries: u64,
    live_queries: u64,
    qps: f64,
    p99_us: u64,
    inflight: u64,
    shed: u64,
}

/// Mid-run timeline plus the quiesce reconciliation outcome.
struct LiveCapture {
    timeline: Vec<Sample>,
    expected: u64,
    sampled: u64,
    live: u64,
}

/// Poll `Stats` until `stop` is set, asserting every reply parses and the
/// counters are consistent: monotone across replies, and the sampled
/// cumulative tally never ahead of the live atomic (workers bump the
/// atomic *before* recording the histogram the sampler folds, so sampled
/// ≤ live always holds — the bounded-drift direction).
fn poll_stats(addr: &str, stop: &AtomicBool) -> Vec<Sample> {
    let mut client = Client::connect(addr).expect("stats poller connect");
    let started = Instant::now();
    let mut timeline = Vec::new();
    let mut last_cum = 0u64;
    let mut last_live = 0u64;
    while !stop.load(Ordering::Acquire) {
        let doc = client.stats(10).expect("mid-run Stats must succeed");
        let v = telemetry::json::parse(&doc).expect("StatsReply must parse");
        let cum = ju64(&v, &["cumulative", "queries"]);
        let live = ju64(&v, &["live", "queries"]);
        assert!(
            cum >= last_cum && live >= last_live,
            "stats went backwards: cum {last_cum}->{cum}, live {last_live}->{live}"
        );
        assert!(
            cum <= live,
            "sampled cumulative ({cum}) ran ahead of the live counter ({live})"
        );
        last_cum = cum;
        last_live = live;
        timeline.push(Sample {
            t_ms: started.elapsed().as_millis() as u64,
            tick: ju64(&v, &["tick"]),
            cum_queries: cum,
            live_queries: live,
            qps: jf64(&v, &["window", "qps"]),
            p99_us: ju64(&v, &["window", "query_us", "p99_us"]),
            inflight: ju64(&v, &["live", "inflight"]),
            shed: ju64(&v, &["live", "shed"]),
        });
        std::thread::sleep(Duration::from_millis(150));
    }
    timeline
}

/// After the drive quiesces, poll until the sampled cumulative tally and
/// the live counter both equal the oracle-verified total. The sampler
/// converges within a couple of its intervals; 5 s is a generous bound.
fn reconcile(addr: &str, expected: u64) -> (u64, u64) {
    let mut client = Client::connect(addr).expect("reconcile connect");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let doc = client.stats(0).expect("quiesce Stats must succeed");
        let v = telemetry::json::parse(&doc).expect("StatsReply must parse");
        let sampled = ju64(&v, &["cumulative", "queries"]);
        let live = ju64(&v, &["live", "queries"]);
        assert!(
            live <= expected && sampled <= expected,
            "server reports more queries ({live} live, {sampled} sampled) than the \
             oracle verified ({expected})"
        );
        if sampled == expected && live == expected {
            return (sampled, live);
        }
        assert!(
            Instant::now() < deadline,
            "stats failed to reconcile with the oracle at quiesce: \
             sampled {sampled}, live {live}, expected {expected}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Self-hosted run for one tier: start an in-process server over real
/// TCP, drive it (optionally with a live Stats poller riding along),
/// reconcile at quiesce, and shut it down cleanly.
fn run_tier<P: pagestore::PageStore + Send + Sync + 'static>(
    reader: DatabaseReader<P>,
    expected: &HashMap<String, Vec<WireRow>>,
    cfg: &Config,
    live_stats: bool,
) -> (DriveResult, ServeStats, Option<LiveCapture>) {
    let server = Server::start(
        reader,
        ServeOptions {
            workers: cfg.workers,
            max_inflight: cfg.max_inflight,
            // Fine-grained sampling so the mid-run timeline has several
            // points even in short runs, and quiesce reconciles fast.
            sample_interval: Duration::from_millis(100),
            ..ServeOptions::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    let stop_poller = Arc::new(AtomicBool::new(false));
    let poller = live_stats.then(|| {
        let addr = addr.clone();
        let stop = Arc::clone(&stop_poller);
        std::thread::spawn(move || poll_stats(&addr, &stop))
    });

    let result = drive(&addr, expected, cfg);

    stop_poller.store(true, Ordering::Release);
    let capture = poller.map(|handle| {
        let timeline = handle.join().expect("stats poller");
        let (sampled, live) = reconcile(&addr, result.verified);
        LiveCapture {
            timeline,
            expected: result.verified,
            sampled,
            live,
        }
    });

    let report = server.shutdown();
    assert_eq!(
        report.stats.shed, result.shed_seen,
        "server and clients disagree on shed count"
    );
    (result, report.stats, capture)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

// ---------------------------------------------------------------------------
// Chaos harness: drive through the fault proxy with retrying clients while
// storage faults land under the live server. The invariant is "no wrong
// answer, ever" — surfaced errors are unavailability, never divergence.
// ---------------------------------------------------------------------------

/// Client-side retry posture under chaos: quick, bounded, seeded. The
/// read timeout matters — a corrupted length header can leave one side
/// waiting for bytes that never come, and the timeout is what turns
/// that from an eternal hang into one more retried attempt.
fn chaos_policy(thread: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        deadline: None,
        read_timeout: Some(Duration::from_millis(750)),
        jitter_seed: SEED ^ thread.wrapping_mul(0x9E37_79B9),
    }
}

/// Chaos-phase tallies. `ok` responses were all verified byte-for-byte
/// against the oracle (a mismatch panics the run); `unavailable` counts
/// requests whose retry budget was exhausted or that hit a non-retryable
/// fault — the availability cost, never a correctness one.
struct ChaosDriveResult {
    wall_secs: f64,
    attempted: u64,
    ok: u64,
    unavailable: u64,
    degraded_ok: u64,
    retries: u64,
    reconnects: u64,
    gaveup: u64,
    latency: HistogramSnapshot,
}

/// Drive the chaos phase: same seeded mixed workload as [`drive`], but
/// through [`RetryClient`]s, and tolerant of surfaced errors.
fn chaos_drive(
    addr: &str,
    expected: &HashMap<String, Vec<WireRow>>,
    cfg: &Config,
) -> ChaosDriveResult {
    let statements = workload::serve::uql_families();
    let started = Instant::now();
    let mut merged = telemetry::Snapshot::default();
    let (mut attempted, mut ok, mut unavailable, mut degraded_ok) = (0u64, 0u64, 0u64, 0u64);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.clients {
            let statements = statements.clone();
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64).wrapping_mul(0x9E3779B9));
                let mut client = RetryClient::new(addr.to_string(), chaos_policy(t as u64));
                let prepared: Vec<serve::Stmt> =
                    statements.iter().map(|s| client.prepare(s)).collect();
                let hist = telemetry::histogram("serve.chaos.latency_us");
                let (mut att, mut okc, mut unav, mut degr) = (0u64, 0u64, 0u64, 0u64);
                for i in 0..cfg.requests_per_client {
                    let which = rng.gen_range(0..statements.len());
                    let stmt = statements[which];
                    let t0 = Instant::now();
                    let reply = if rng.gen_range(0..2) == 0 {
                        client.execute(prepared[which])
                    } else {
                        client.query(stmt)
                    };
                    hist.record(t0.elapsed().as_micros() as u64);
                    att += 1;
                    match reply {
                        Ok(reply) => {
                            assert_eq!(
                                reply.rows, expected[stmt],
                                "client {t} request {i}: WRONG ANSWER under chaos for `{stmt}`"
                            );
                            okc += 1;
                            if reply.done.degraded {
                                degr += 1;
                            }
                        }
                        // Retry budget exhausted or a non-retryable fault
                        // (e.g. the server refusing a corrupted request):
                        // an availability loss, counted and moved past.
                        Err(_) => unav += 1,
                    }
                }
                (att, okc, unav, degr, telemetry::snapshot())
            }));
        }
        for h in handles {
            let (att, okc, unav, degr, snap) = h.join().expect("chaos client thread");
            attempted += att;
            ok += okc;
            unavailable += unav;
            degraded_ok += degr;
            merged.merge(&snap);
        }
    });

    let counter = |name: &str| merged.counters.get(name).copied().unwrap_or(0);
    ChaosDriveResult {
        wall_secs: started.elapsed().as_secs_f64(),
        attempted,
        ok,
        unavailable,
        degraded_ok,
        retries: counter("serve.client.retries"),
        reconnects: counter("serve.client.reconnects"),
        gaveup: counter("serve.client.gaveup"),
        latency: merged
            .histograms
            .get("serve.chaos.latency_us")
            .cloned()
            .unwrap_or_default(),
    }
}

fn fault_tally(trace: &[FaultEvent]) -> [(&'static str, u64); 5] {
    let mut tally = [
        ("delay", 0u64),
        ("stall", 0),
        ("corrupt", 0),
        ("truncate", 0),
        ("drop", 0),
    ];
    for e in trace {
        let slot = match e.action {
            ChaosAction::Delay { .. } => 0,
            ChaosAction::Stall { .. } => 1,
            ChaosAction::CorruptBit { .. } => 2,
            ChaosAction::Truncate => 3,
            ChaosAction::Drop => 4,
        };
        tally[slot].1 += 1;
    }
    tally
}

/// One tier's chaos outcome: the calm baseline, the chaos phase, the
/// server's own ledger, and what the proxy actually injected.
struct ChaosTierReport {
    calm: DriveResult,
    chaos: ChaosDriveResult,
    stats: ServeStats,
    faults: [(&'static str, u64); 5],
    proxy_conns: u64,
}

impl ChaosTierReport {
    fn availability(&self) -> f64 {
        self.chaos.ok as f64 / self.chaos.attempted.max(1) as f64
    }
}

/// Run one tier through calm + chaos phases over a fallback-armed reader,
/// with storage faults scheduled under the live server, then verify the
/// heal path (a clean check lifts the quarantine) and the no-wrong-answer
/// ledger.
fn run_chaos_tier<P: pagestore::Scrubbable + Send + Sync + 'static>(
    tier: &str,
    db: &mut Database<P>,
    fault: FaultHandle,
    expected: &HashMap<String, Vec<WireRow>>,
    cfg: &Config,
) -> ChaosTierReport {
    let server = Server::start(
        db.reader_with_fallback(),
        ServeOptions {
            workers: cfg.workers,
            max_inflight: cfg.max_inflight,
            ..ServeOptions::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    // Phase 1: calm — the availability and latency baseline.
    let calm = drive(&addr, expected, cfg);

    // Phase 2: chaos. Network faults come from the proxy's seeded
    // schedule; storage faults are planted under the running server:
    // drop the page cache so the drive's reads reach the store, absorb a
    // transient burst in the pool's bounded retries, then hit silent
    // corruption mid-query — quarantining the index so the rest of the
    // phase answers (correctly) from the object-store fallback.
    let proxy = ChaosProxy::start(
        server.local_addr(),
        ChaosConfig {
            seed: SEED ^ 0x00C4_A05C,
            // Reply size tracks the vehicle count (~10 bytes/row, whole
            // families match); scale the fault gap with it so severing
            // faults land "every several requests" rather than "every
            // reply" — the phase measures survival, not pure churn.
            // Full scale (2000 vehicles) → 16 KiB; smoke → the 4 KiB floor.
            mean_gap_bytes: (cfg.vehicles as u64 * 8).max(4096),
            delay_ms: 1,
            stall_ms: 10,
            ..ChaosConfig::default()
        },
    )
    .expect("chaos proxy");
    let pool = db.index().tree().pool();
    pool.flush().expect("flush");
    pool.invalidate_cache().expect("invalidate");
    fault.inject_burst(fault.ops(), 2, Fault::IoError);
    fault.inject(fault.ops() + 6, Fault::BitFlip { bit: 3 });

    let chaos = chaos_drive(&proxy.local_addr().to_string(), expected, cfg);
    let proxy_conns = proxy.connections();
    let trace = proxy.shutdown();
    assert!(!trace.is_empty(), "{tier}: the chaos schedule never fired");

    // Heal: the flip was transient, so the integrity check comes back
    // clean and lifts the quarantine — the serving health-probe path.
    let report = db.check().expect("post-chaos check");
    assert!(report.clean(), "{tier}: chaos must not persist damage");
    assert!(!db.quarantined(), "{tier}: a clean check lifts quarantine");

    let sreport = server.shutdown();
    assert!(
        sreport.stats.degraded_answers >= 1,
        "{tier}: the planted corruption must degrade at least one answer"
    );
    assert_eq!(
        sreport
            .metrics
            .counters
            .get("serve.worker.panics")
            .copied()
            .unwrap_or(0),
        0,
        "{tier}: no worker may die under chaos"
    );
    assert!(chaos.ok > 0, "{tier}: nothing survived the chaos phase");
    let availability = chaos.ok as f64 / chaos.attempted.max(1) as f64;
    assert!(
        availability >= 0.5,
        "{tier}: availability collapsed under chaos: {availability:.3}"
    );

    ChaosTierReport {
        calm,
        chaos,
        stats: sreport.stats,
        faults: fault_tally(&trace),
        proxy_conns,
    }
}

fn print_chaos_tier(tier: &str, r: &ChaosTierReport) {
    println!(
        "{tier:<5} chaos: {} attempted, {} ok ({:.1}% available), {} unavailable, \
         {} degraded-ok; client {} retries / {} reconnects / {} gaveup",
        r.chaos.attempted,
        r.chaos.ok,
        r.availability() * 100.0,
        r.chaos.unavailable,
        r.chaos.degraded_ok,
        r.chaos.retries,
        r.chaos.reconnects,
        r.chaos.gaveup,
    );
    let faults: Vec<String> = r
        .faults
        .iter()
        .map(|(name, n)| format!("{name} {n}"))
        .collect();
    println!(
        "      {:.0} req/s; p99 calm {}us -> chaos {}us; server degraded answers {}; \
         proxy: {} conns, faults: {}",
        r.chaos.attempted as f64 / r.chaos.wall_secs.max(1e-9),
        r.calm.latency.percentile(0.99),
        r.chaos.latency.percentile(0.99),
        r.stats.degraded_answers,
        r.proxy_conns,
        faults.join(" "),
    );
}

fn chaos_tier_json(r: &ChaosTierReport) -> String {
    let faults: Vec<String> = r
        .faults
        .iter()
        .map(|(name, n)| format!("\"{name}\": {n}"))
        .collect();
    format!(
        "{{\n      \"availability\": {:.6},\n      \"attempted\": {}, \"ok\": {}, \
         \"unavailable\": {}, \"degraded_ok\": {},\n      \"client\": {{\"retries\": {}, \
         \"reconnects\": {}, \"gaveup\": {}}},\n      \"server\": {{\"queries\": {}, \
         \"degraded_answers\": {}, \"shed\": {}, \"connections\": {}}},\n      \
         \"latency_us\": {{\"calm_p99\": {}, \"chaos_p99\": {}}},\n      \
         \"proxy\": {{\"connections\": {}, \"faults\": {{{}}}}}\n    }}",
        r.availability(),
        r.chaos.attempted,
        r.chaos.ok,
        r.chaos.unavailable,
        r.chaos.degraded_ok,
        r.chaos.retries,
        r.chaos.reconnects,
        r.chaos.gaveup,
        r.stats.queries,
        r.stats.degraded_answers,
        r.stats.shed,
        r.stats.connections,
        r.calm.latency.percentile(0.99),
        r.chaos.latency.percentile(0.99),
        r.proxy_conns,
        faults.join(", "),
    )
}

/// Self-hosted chaos run over both tiers; writes `BENCH_chaos.json`
/// unless `smoke`.
fn run_chaos(cfg: &Config, smoke: bool) {
    println!(
        "loadgen chaos: {} clients x {} requests, {} vehicles{}",
        cfg.clients,
        cfg.requests_per_client,
        cfg.vehicles,
        if smoke { " (smoke)" } else { "" }
    );

    let mut mem = build_mem(cfg);
    let expected = oracle(&mem.reader());
    let mem_fault = mem.fault_handle();
    let mem_report = run_chaos_tier("mem", &mut mem, mem_fault, &expected, cfg);
    print_chaos_tier("mem", &mem_report);

    let mut dir: PathBuf = std::env::temp_dir();
    dir.push(format!("uindex_chaos_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (schema, classes) = workload::serve::schema();
    let mut disk = DiskDatabase::create(
        schema,
        &dir,
        DiskOptions {
            page_size: 1024,
            pool_pages: 1 << 14,
            ..DiskOptions::default()
        },
    )
    .expect("disk database");
    workload::serve::populate(&mut disk, &classes, SEED, cfg.vehicles).expect("populate disk");
    disk.commit().expect("commit");
    // Empty the WAL overlay so chaos-phase reads go through the page
    // file (and its fault layer), not the recovery overlay.
    disk.checkpoint().expect("checkpoint");
    let disk_fault = disk.fault_handle();
    let disk_report = run_chaos_tier("disk", &mut disk, disk_fault, &expected, cfg);
    print_chaos_tier("disk", &disk_report);
    drop(disk);
    std::fs::remove_dir_all(&dir).ok();

    let verified = mem_report.chaos.ok + disk_report.chaos.ok;
    println!("oracle: {verified} chaos responses verified, 0 mismatches");

    if smoke {
        println!("smoke run: BENCH_chaos.json not written");
        return;
    }

    let provenance = telemetry::Provenance {
        seed: SEED,
        workload: "vehicle-serve-chaos".into(),
        objects: cfg.vehicles as u64,
        version: telemetry::tool_version(env!("CARGO_PKG_VERSION")),
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"provenance\": {},", provenance.to_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"clients\": {}, \"requests_per_client\": {}, \"vehicles\": {}, \
         \"workers\": {}, \"max_inflight\": {}}},",
        cfg.clients, cfg.requests_per_client, cfg.vehicles, cfg.workers, cfg.max_inflight,
    );
    json.push_str("  \"tiers\": {\n");
    let _ = writeln!(json, "    \"mem\": {},", chaos_tier_json(&mem_report));
    let _ = writeln!(json, "    \"disk\": {}", chaos_tier_json(&disk_report));
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"oracle\": {{\"verified_responses\": {verified}, \"mismatches\": 0}}"
    );
    json.push_str("}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_chaos.json");
    std::fs::write(&path, json).expect("write BENCH_chaos.json");
    println!("wrote {}", path.display());
}

// ---------------------------------------------------------------------------
// Crash-restart drill: SIGKILL a real `uindex-cli serve` process mid-load,
// restart it, and require clients to ride through on retries alone.
// ---------------------------------------------------------------------------

/// Spawn `uindex-cli serve DIR --port 0` and parse the listen address
/// from its stdout. The remaining output is drained in the background so
/// the child never blocks on a full pipe.
fn spawn_server(bin: &str, dir: &std::path::Path) -> (Child, SocketAddr) {
    let mut child = Command::new(bin)
        .arg("serve")
        .arg(dir)
        .arg("--port")
        .arg("0")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn uindex-cli serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before listening")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().parse::<SocketAddr>().expect("bad listen addr");
        }
    };
    std::thread::spawn(move || for _line in lines {});
    (child, addr)
}

/// The crash-restart drill (see the module docs). `bin` is the
/// `uindex-cli` binary to serve with.
fn run_drill(bin: &str) {
    let cfg = Config {
        clients: 4,
        requests_per_client: 200,
        vehicles: 120,
        workers: 2,
        max_inflight: 16,
    };
    let mut dir = std::env::temp_dir();
    dir.push(format!("uindex_chaos_drill_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut db = build_mem(&cfg);
    let expected = oracle(&db.reader());
    db.save(&dir).expect("save drill db");

    let (mut child, addr) = spawn_server(bin, &dir);
    println!("drill: serving from {bin} at {addr}");
    // The proxy is the *stable* endpoint across the crash: clients keep
    // its address while the server's changes underneath.
    let proxy = ChaosProxy::start(
        addr,
        ChaosConfig {
            mean_gap_bytes: 0, // pure pipe; the fault here is the SIGKILL
            ..ChaosConfig::default()
        },
    )
    .expect("chaos proxy");
    let paddr = proxy.local_addr().to_string();

    // 0 = original server, 1 = restarted. Flipped by the coordinator
    // right after the proxy is repointed, so `ok_after` only counts
    // answers that must have come from the restarted process.
    let phase = AtomicU64::new(0);
    let ok_total = AtomicU64::new(0);
    let statements = workload::serve::uql_families();

    let (before, after, unavailable) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.clients {
            let statements = statements.clone();
            let (phase, ok_total, expected) = (&phase, &ok_total, &expected);
            let paddr = paddr.clone();
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(SEED ^ t as u64);
                let mut client = RetryClient::new(
                    paddr,
                    RetryPolicy {
                        max_attempts: 200,
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(50),
                        deadline: Some(Duration::from_secs(30)),
                        read_timeout: Some(Duration::from_secs(2)),
                        jitter_seed: SEED ^ t as u64,
                    },
                );
                let prepared: Vec<serve::Stmt> =
                    statements.iter().map(|s| client.prepare(s)).collect();
                let (mut before, mut after, mut unav) = (0u64, 0u64, 0u64);
                for i in 0..cfg.requests_per_client {
                    let which = rng.gen_range(0..statements.len());
                    let stmt = statements[which];
                    let reply = if rng.gen_range(0..2) == 0 {
                        client.execute(prepared[which])
                    } else {
                        client.query(stmt)
                    };
                    match reply {
                        Ok(reply) => {
                            assert_eq!(
                                reply.rows, expected[stmt],
                                "client {t} request {i}: WRONG ANSWER across restart \
                                 for `{stmt}`"
                            );
                            ok_total.fetch_add(1, Ordering::Relaxed);
                            if phase.load(Ordering::Acquire) == 1 {
                                after += 1;
                            } else {
                                before += 1;
                            }
                        }
                        Err(_) => unav += 1,
                    }
                    // Pace the drive so the kill lands mid-load even on
                    // fast machines.
                    std::thread::sleep(Duration::from_micros(500));
                }
                (before, after, unav)
            }));
        }

        // Let load build, then murder the server mid-flight.
        while ok_total.load(Ordering::Relaxed) < cfg.clients as u64 * 5 {
            std::thread::sleep(Duration::from_millis(1));
        }
        child.kill().expect("SIGKILL server");
        child.wait().expect("reap server");
        println!("drill: server SIGKILLed mid-load; restarting");
        let (child2, addr2) = spawn_server(bin, &dir);
        child = child2;
        proxy.set_upstream(addr2);
        phase.store(1, Ordering::Release);
        println!("drill: restarted at {addr2}; proxy repointed");

        let (mut before, mut after, mut unav) = (0u64, 0u64, 0u64);
        for h in handles {
            let (b, a, u) = h.join().expect("drill client");
            before += b;
            after += a;
            unav += u;
        }
        (before, after, unav)
    });

    child.kill().ok();
    child.wait().ok();
    proxy.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    assert!(before > 0, "drill: no verified answers before the kill");
    assert!(
        after > 0,
        "drill: clients failed to reconnect and verify answers after the restart"
    );
    println!(
        "drill: {before} verified before SIGKILL, {after} after restart, \
         {unavailable} unavailable during the outage, 0 mismatches"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let live_stats = std::env::args().any(|a| a == "--live-stats");
    let cfg = Config::new(smoke);

    // --chaos-drill: SIGKILL-and-restart a real serve process mid-load.
    if std::env::args().any(|a| a == "--chaos-drill") {
        let bin = arg_value("--cli-bin").expect("--chaos-drill requires --cli-bin PATH");
        run_drill(&bin);
        return;
    }

    // --chaos: the fault-survival harness over both tiers.
    if std::env::args().any(|a| a == "--chaos") {
        run_chaos(&cfg, smoke);
        return;
    }

    // --save-db DIR: materialize the workload database and exit.
    if let Some(dir) = arg_value("--save-db") {
        let db = build_mem(&cfg);
        db.save(std::path::Path::new(&dir)).expect("save db");
        println!(
            "saved serve workload ({} vehicles, indexes color/age) to {dir}",
            cfg.vehicles
        );
        return;
    }

    // --addr: drive an external server, oracle from --db.
    if let Some(addr) = arg_value("--addr") {
        let dbdir = arg_value("--db").expect("--addr requires --db DIR for the oracle");
        let mut db = Database::open(std::path::Path::new(&dbdir)).expect("open oracle db");
        let expected = oracle(&db.reader());
        let result = drive(&addr, &expected, &cfg);
        print_tier("ext", &result);
        assert!(result.verified > 0, "no responses verified");
        println!(
            "oracle: {} responses verified against {} statements, 0 mismatches",
            result.verified,
            expected.len()
        );
        return;
    }

    // Self-hosted: both tiers, one JSON.
    println!(
        "loadgen: {} clients x {} requests, {} vehicles{}",
        cfg.clients,
        cfg.requests_per_client,
        cfg.vehicles,
        if smoke { " (smoke)" } else { "" }
    );

    let mut mem = build_mem(&cfg);
    let mem_reader = mem.reader();
    let expected = oracle(&mem_reader);
    assert!(
        expected.values().any(|rows| !rows.is_empty()),
        "oracle produced only empty answers"
    );
    let (mem_result, mem_stats, mem_capture) = run_tier(mem_reader, &expected, &cfg, live_stats);
    print_tier("mem", &mem_result);
    if let Some(c) = &mem_capture {
        println!(
            "live-stats: {} samples, reconciled exactly at quiesce ({} queries)",
            c.timeline.len(),
            c.expected
        );
    }

    let mut dir: PathBuf = std::env::temp_dir();
    dir.push(format!("uindex_loadgen_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (schema, classes) = workload::serve::schema();
    let mut disk = DiskDatabase::create(
        schema,
        &dir,
        DiskOptions {
            page_size: 1024,
            pool_pages: 1 << 14,
            ..DiskOptions::default()
        },
    )
    .expect("disk database");
    workload::serve::populate(&mut disk, &classes, SEED, cfg.vehicles).expect("populate disk");
    disk.commit().expect("commit");
    let disk_reader = disk.reader();
    let disk_expected = oracle(&disk_reader);
    assert_eq!(
        expected, disk_expected,
        "store tiers disagree on oracle answers"
    );
    let (disk_result, disk_stats, disk_capture) =
        run_tier(disk_reader, &expected, &cfg, live_stats);
    print_tier("disk", &disk_result);
    if let Some(c) = &disk_capture {
        println!(
            "live-stats: {} samples, reconciled exactly at quiesce ({} queries)",
            c.timeline.len(),
            c.expected
        );
    }
    drop(disk);
    std::fs::remove_dir_all(&dir).ok();

    let total_verified = mem_result.verified + disk_result.verified;
    println!(
        "oracle: {} responses verified against {} statements, 0 mismatches",
        total_verified,
        expected.len()
    );

    if smoke {
        println!("smoke run: BENCH_serve.json not written");
        return;
    }

    let provenance = telemetry::Provenance {
        seed: SEED,
        workload: "vehicle-serve".into(),
        objects: cfg.vehicles as u64,
        version: telemetry::tool_version(env!("CARGO_PKG_VERSION")),
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"provenance\": {},", provenance.to_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"clients\": {}, \"requests_per_client\": {}, \"vehicles\": {}, \
         \"workers\": {}, \"max_inflight\": {}, \"statements\": {}}},",
        cfg.clients,
        cfg.requests_per_client,
        cfg.vehicles,
        cfg.workers,
        cfg.max_inflight,
        expected.len(),
    );
    json.push_str("  \"tiers\": {\n");
    for (i, (tier, result, stats, capture)) in [
        ("mem", &mem_result, &mem_stats, &mem_capture),
        ("disk", &disk_result, &disk_stats, &disk_capture),
    ]
    .into_iter()
    .enumerate()
    {
        let _ = writeln!(json, "    \"{tier}\": {{");
        let _ = writeln!(
            json,
            "      \"throughput_rps\": {:.1},",
            result.requests as f64 / result.wall_secs.max(1e-9)
        );
        let _ = writeln!(
            json,
            "      \"latency_us\": {},",
            latency_json(&result.latency)
        );
        let trailer = if capture.is_some() { "," } else { "" };
        let _ = writeln!(json, "      \"server\": {}{trailer}", stats_json(stats));
        if let Some(c) = capture {
            json.push_str("      \"timeline\": [\n");
            for (j, s) in c.timeline.iter().enumerate() {
                let _ = writeln!(
                    json,
                    "        {{\"t_ms\": {}, \"tick\": {}, \"cum_queries\": {}, \
                     \"live_queries\": {}, \"qps\": {:.3}, \"p99_us\": {}, \
                     \"inflight\": {}, \"shed\": {}}}{}",
                    s.t_ms,
                    s.tick,
                    s.cum_queries,
                    s.live_queries,
                    s.qps,
                    s.p99_us,
                    s.inflight,
                    s.shed,
                    if j + 1 == c.timeline.len() { "" } else { "," },
                );
            }
            json.push_str("      ],\n");
            let _ = writeln!(
                json,
                "      \"reconcile\": {{\"expected\": {}, \"sampled\": {}, \"live\": {}, \
                 \"exact\": {}}}",
                c.expected,
                c.sampled,
                c.live,
                c.sampled == c.expected && c.live == c.expected,
            );
        }
        json.push_str(if i == 0 { "    },\n" } else { "    }\n" });
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"oracle\": {{\"statements\": {}, \"verified_responses\": {}, \"mismatches\": 0}}",
        expected.len(),
        total_verified,
    );
    json.push_str("}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
