//! Serving-layer load generator: drives N concurrent clients over real
//! TCP with a seeded mixed UQL stream (about half through the prepared-
//! statement path), cross-checks **every** response byte-for-byte against
//! an in-process oracle, and writes `BENCH_serve.json` (p50/p99/p999
//! latency from the telemetry log₂ histograms, plus throughput and server
//! counters) at the repo root.
//!
//! Modes:
//!
//! - default: self-hosted — build the vehicle serve workload on both
//!   store tiers, serve each from an in-process server, measure both.
//! - `--smoke`: tiny configuration, no JSON write (the CI hook).
//! - `--save-db DIR`: build the workload database, save it for
//!   `uindex-cli serve`, and exit.
//! - `--addr HOST:PORT --db DIR`: external — drive an already-running
//!   server, with the oracle rebuilt from the saved database in DIR.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{Client, ServeOptions, ServeStats, Server, WireRow};
use telemetry::HistogramSnapshot;
use uindex::{Database, DatabaseReader, DiskDatabase, DiskOptions};

const SEED: u64 = 42;

#[derive(Clone, Copy)]
struct Config {
    clients: usize,
    requests_per_client: usize,
    vehicles: usize,
    workers: usize,
    max_inflight: usize,
}

impl Config {
    fn new(smoke: bool) -> Config {
        if smoke {
            Config {
                clients: 3,
                requests_per_client: 12,
                vehicles: 120,
                workers: 2,
                max_inflight: 16,
            }
        } else {
            Config {
                clients: 8,
                requests_per_client: 300,
                vehicles: 2000,
                workers: 4,
                max_inflight: 32,
            }
        }
    }
}

fn build_mem(cfg: &Config) -> Database {
    let (schema, classes) = workload::serve::schema();
    let mut db = Database::with_page_size(schema, 1024, 1 << 14).expect("mem database");
    workload::serve::populate(&mut db, &classes, SEED, cfg.vehicles).expect("populate");
    db
}

/// Expected wire rows per statement — the differential oracle. Uses the
/// identical [`WireRow::from_hit`] conversion the server uses, so any
/// divergence is a real engine/protocol bug, never an encoding artifact.
fn oracle<P: pagestore::PageStore>(reader: &DatabaseReader<P>) -> HashMap<String, Vec<WireRow>> {
    workload::serve::uql_families()
        .into_iter()
        .map(|stmt| {
            let q = reader.parse_uql(stmt).expect("oracle parse");
            let (hits, _) = reader.query(&q).expect("oracle query");
            let rows = hits
                .iter()
                .map(|h| WireRow::from_hit(h).expect("oracle row"))
                .collect();
            (stmt.to_string(), rows)
        })
        .collect()
}

struct DriveResult {
    wall_secs: f64,
    requests: u64,
    verified: u64,
    shed_seen: u64,
    latency: HistogramSnapshot,
}

/// Drive `cfg.clients` threads of mixed prepared/direct requests against
/// `addr`, verifying every successful response against the oracle.
/// Panics (non-zero exit) on the first divergence.
fn drive(addr: &str, expected: &HashMap<String, Vec<WireRow>>, cfg: &Config) -> DriveResult {
    let statements = workload::serve::uql_families();
    let started = Instant::now();
    let mut merged = telemetry::Snapshot::default();
    let mut requests = 0u64;
    let mut verified = 0u64;
    let mut shed_seen = 0u64;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.clients {
            let statements = statements.clone();
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64).wrapping_mul(0x9E3779B9));
                let mut client = Client::connect(addr).expect("connect");
                let prepared: Vec<u64> = statements
                    .iter()
                    .map(|s| client.prepare(s).expect("prepare"))
                    .collect();
                let hist = telemetry::histogram("serve.client.latency_us");
                let (mut reqs, mut ok, mut shed) = (0u64, 0u64, 0u64);
                for i in 0..cfg.requests_per_client {
                    let which = rng.gen_range(0..statements.len());
                    let stmt = statements[which];
                    let t0 = Instant::now();
                    let reply = if rng.gen_range(0..2) == 0 {
                        client.execute(prepared[which])
                    } else {
                        client.query(stmt)
                    };
                    hist.record(t0.elapsed().as_micros() as u64);
                    reqs += 1;
                    match reply {
                        Ok(reply) => {
                            assert_eq!(
                                reply.rows, expected[stmt],
                                "client {t} request {i}: server response diverged from \
                                 oracle for `{stmt}`"
                            );
                            ok += 1;
                        }
                        Err(e) if e.is_overloaded() => shed += 1,
                        Err(e) => panic!("client {t} request {i}: {e}"),
                    }
                }
                (reqs, ok, shed, telemetry::snapshot())
            }));
        }
        for h in handles {
            let (reqs, ok, shed, snap) = h.join().expect("client thread");
            requests += reqs;
            verified += ok;
            shed_seen += shed;
            merged.merge(&snap);
        }
    });

    let latency = merged
        .histograms
        .get("serve.client.latency_us")
        .cloned()
        .unwrap_or_default();
    DriveResult {
        wall_secs: started.elapsed().as_secs_f64(),
        requests,
        verified,
        shed_seen,
        latency,
    }
}

/// Percentile over a log₂-bucketed histogram: the upper bound of the
/// bucket where the cumulative count crosses `q` — a ≤2× overestimate by
/// construction (documented in docs/bench-format.md).
fn percentile(h: &HistogramSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let target = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
    let mut cum = 0u64;
    for &(_, hi, count) in &h.buckets {
        cum += count;
        if cum >= target {
            return hi;
        }
    }
    h.buckets.last().map(|&(_, hi, _)| hi).unwrap_or(0)
}

fn latency_json(h: &HistogramSnapshot) -> String {
    let mean = h.sum.checked_div(h.count).unwrap_or(0);
    format!(
        "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}",
        h.count,
        mean,
        percentile(h, 0.50),
        percentile(h, 0.99),
        percentile(h, 0.999),
    )
}

fn stats_json(s: &ServeStats) -> String {
    format!(
        "{{\"connections\": {}, \"requests\": {}, \"queries\": {}, \"shed\": {}, \
         \"rows_sent\": {}, \"plan_cache_hits\": {}, \"plan_cache_misses\": {}}}",
        s.connections,
        s.requests,
        s.queries,
        s.shed,
        s.rows_sent,
        s.plan_cache_hits,
        s.plan_cache_misses,
    )
}

fn print_tier(tier: &str, r: &DriveResult) {
    println!(
        "{tier:<5} {:>8} reqs {:>10.0} req/s  p50 {:>6}us  p99 {:>6}us  p999 {:>6}us  \
         ({} verified, {} shed)",
        r.requests,
        r.requests as f64 / r.wall_secs.max(1e-9),
        percentile(&r.latency, 0.50),
        percentile(&r.latency, 0.99),
        percentile(&r.latency, 0.999),
        r.verified,
        r.shed_seen,
    );
}

/// Self-hosted run for one tier: start an in-process server over real
/// TCP, drive it, shut it down cleanly.
fn run_tier<P: pagestore::PageStore + Send + Sync + 'static>(
    reader: DatabaseReader<P>,
    expected: &HashMap<String, Vec<WireRow>>,
    cfg: &Config,
) -> (DriveResult, ServeStats) {
    let server = Server::start(
        reader,
        ServeOptions {
            workers: cfg.workers,
            max_inflight: cfg.max_inflight,
            ..ServeOptions::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr().to_string();
    let result = drive(&addr, expected, cfg);
    let report = server.shutdown();
    assert_eq!(
        report.stats.shed, result.shed_seen,
        "server and clients disagree on shed count"
    );
    (result, report.stats)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = Config::new(smoke);

    // --save-db DIR: materialize the workload database and exit.
    if let Some(dir) = arg_value("--save-db") {
        let db = build_mem(&cfg);
        db.save(std::path::Path::new(&dir)).expect("save db");
        println!(
            "saved serve workload ({} vehicles, indexes color/age) to {dir}",
            cfg.vehicles
        );
        return;
    }

    // --addr: drive an external server, oracle from --db.
    if let Some(addr) = arg_value("--addr") {
        let dbdir = arg_value("--db").expect("--addr requires --db DIR for the oracle");
        let mut db = Database::open(std::path::Path::new(&dbdir)).expect("open oracle db");
        let expected = oracle(&db.reader());
        let result = drive(&addr, &expected, &cfg);
        print_tier("ext", &result);
        assert!(result.verified > 0, "no responses verified");
        println!(
            "oracle: {} responses verified against {} statements, 0 mismatches",
            result.verified,
            expected.len()
        );
        return;
    }

    // Self-hosted: both tiers, one JSON.
    println!(
        "loadgen: {} clients x {} requests, {} vehicles{}",
        cfg.clients,
        cfg.requests_per_client,
        cfg.vehicles,
        if smoke { " (smoke)" } else { "" }
    );

    let mut mem = build_mem(&cfg);
    let mem_reader = mem.reader();
    let expected = oracle(&mem_reader);
    assert!(
        expected.values().any(|rows| !rows.is_empty()),
        "oracle produced only empty answers"
    );
    let (mem_result, mem_stats) = run_tier(mem_reader, &expected, &cfg);
    print_tier("mem", &mem_result);

    let mut dir: PathBuf = std::env::temp_dir();
    dir.push(format!("uindex_loadgen_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (schema, classes) = workload::serve::schema();
    let mut disk = DiskDatabase::create(
        schema,
        &dir,
        DiskOptions {
            page_size: 1024,
            pool_pages: 1 << 14,
            ..DiskOptions::default()
        },
    )
    .expect("disk database");
    workload::serve::populate(&mut disk, &classes, SEED, cfg.vehicles).expect("populate disk");
    disk.commit().expect("commit");
    let disk_reader = disk.reader();
    let disk_expected = oracle(&disk_reader);
    assert_eq!(
        expected, disk_expected,
        "store tiers disagree on oracle answers"
    );
    let (disk_result, disk_stats) = run_tier(disk_reader, &expected, &cfg);
    print_tier("disk", &disk_result);
    drop(disk);
    std::fs::remove_dir_all(&dir).ok();

    let total_verified = mem_result.verified + disk_result.verified;
    println!(
        "oracle: {} responses verified against {} statements, 0 mismatches",
        total_verified,
        expected.len()
    );

    if smoke {
        println!("smoke run: BENCH_serve.json not written");
        return;
    }

    let provenance = telemetry::Provenance {
        seed: SEED,
        workload: "vehicle-serve".into(),
        objects: cfg.vehicles as u64,
        version: telemetry::tool_version(env!("CARGO_PKG_VERSION")),
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"provenance\": {},", provenance.to_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"clients\": {}, \"requests_per_client\": {}, \"vehicles\": {}, \
         \"workers\": {}, \"max_inflight\": {}, \"statements\": {}}},",
        cfg.clients,
        cfg.requests_per_client,
        cfg.vehicles,
        cfg.workers,
        cfg.max_inflight,
        expected.len(),
    );
    json.push_str("  \"tiers\": {\n");
    for (i, (tier, result, stats)) in [
        ("mem", &mem_result, &mem_stats),
        ("disk", &disk_result, &disk_stats),
    ]
    .into_iter()
    .enumerate()
    {
        let _ = writeln!(json, "    \"{tier}\": {{");
        let _ = writeln!(
            json,
            "      \"throughput_rps\": {:.1},",
            result.requests as f64 / result.wall_secs.max(1e-9)
        );
        let _ = writeln!(
            json,
            "      \"latency_us\": {},",
            latency_json(&result.latency)
        );
        let _ = writeln!(json, "      \"server\": {}", stats_json(stats));
        json.push_str(if i == 0 { "    },\n" } else { "    }\n" });
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"oracle\": {{\"statements\": {}, \"verified_responses\": {}, \"mismatches\": 0}}",
        expected.len(),
        total_verified,
    );
    json.push_str("}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
