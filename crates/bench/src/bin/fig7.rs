//! Figure 7: range queries over 2% of the keyspace.
//!
//! Usage: `cargo run --release -p bench --bin fig7`

use bench::{num_objects, run_figure, QueryKind};

fn main() {
    run_figure(
        "Figure 7 — Range Query (2% of Keyspace)",
        QueryKind::Range(0.02),
        num_objects(),
        71,
    );
}
