//! Figure 6: range queries over 10% of the keyspace.
//!
//! Usage: `cargo run --release -p bench --bin fig6`

use bench::{num_objects, run_figure, QueryKind};

fn main() {
    run_figure(
        "Figure 6 — Range Query (10% of Keyspace)",
        QueryKind::Range(0.10),
        num_objects(),
        61,
    );
}
