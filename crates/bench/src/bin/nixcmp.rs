//! Future work implemented (paper §6): a quantitative comparison of the
//! U-index against the Nested-Inherited Index (NIX) for the combined
//! class-hierarchy/path case, testing the §4.4 predictions:
//!
//! * single-class queries: comparable;
//! * whole sub-tree queried: U-index better (clustering);
//! * mid-path restriction ("vehicles of company X"): U-index better — NIX
//!   must consult its auxiliary parent structures per candidate;
//! * range queries: NIX better (no redundant sub-class entries read);
//! * end-of-path updates: NIX worse (it maintains two structures).
//!
//! Usage: `cargo run --release -p bench --bin nixcmp`

use baselines::{Nix, SetId};
use objstore::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schema::{AttrType, ClassId, Schema};
use uindex::{ClassSel, Database, IndexSpec, OidSel, Query, ValuePred};

/// Sets used inside NIX: one per class along the indexed path, numbered by
/// the class's pre-order position.
fn set_of(classes: &[ClassId], c: ClassId) -> SetId {
    SetId(classes.iter().position(|&x| x == c).unwrap() as u16)
}

fn main() {
    let n_vehicles: usize = std::env::var("VEHICLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let mut rng = StdRng::seed_from_u64(123);

    // Schema: Vehicle (> Automobile > Compact, > Truck) --MadeBy-->
    // Company (> AutoCompany) --President--> Employee.
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let auto_co = s.add_subclass("AutoCompany", company).unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
        .unwrap();
    let automobile = s.add_subclass("Automobile", vehicle).unwrap();
    let compact = s.add_subclass("Compact", automobile).unwrap();
    let truck = s.add_subclass("Truck", vehicle).unwrap();
    let path_classes = [
        employee, company, auto_co, vehicle, automobile, compact, truck,
    ];

    let mut db = Database::in_memory(s).unwrap();
    let idx = db
        .define_index(IndexSpec::path(
            "age",
            vehicle,
            &["MadeBy", "President"],
            "Age",
        ))
        .unwrap();
    let mut nix = Nix::new(1024, 1 << 17).unwrap();

    // Population: 60 employees, 200 companies, n vehicles.
    let mut employees = Vec::new();
    for _ in 0..60 {
        let e = db.create_object(employee).unwrap();
        db.set_attr(e, "Age", Value::Int(rng.gen_range(25..65)))
            .unwrap();
        employees.push(e);
    }
    let mut companies = Vec::new();
    for i in 0..200usize {
        let class = if i % 2 == 0 { company } else { auto_co };
        let c = db.create_object(class).unwrap();
        db.set_attr(c, "President", Value::Ref(employees[rng.gen_range(0..60)]))
            .unwrap();
        companies.push(c);
    }
    let vclasses = [vehicle, automobile, compact, truck];
    let mut vehicles = Vec::new();
    for _ in 0..n_vehicles {
        let class = vclasses[rng.gen_range(0..4)];
        let v = db.create_object(class).unwrap();
        db.set_attr(v, "MadeBy", Value::Ref(companies[rng.gen_range(0..200)]))
            .unwrap();
        vehicles.push(v);
    }
    // Mirror the same associations into NIX: for each age value, entries for
    // every class instance along the path (key grouping) plus the auxiliary
    // parent links.
    for &e in &employees {
        let age = match db.store().attr(e, "Age").unwrap() {
            Some(Value::Int(a)) => *a,
            _ => unreachable!(),
        };
        let key = (age as u64).to_be_bytes().to_vec();
        let eset = set_of(&path_classes, employee);
        nix.insert(&key, eset, e, None).unwrap();
        for (c, cclass, _) in db
            .store()
            .referrers(e)
            .into_iter()
            .map(|(c, decl, attr)| (c, db.store().class_of(c).unwrap(), (decl, attr)))
        {
            nix.insert(&key, set_of(&path_classes, cclass), c, Some(e))
                .unwrap();
            for (v, _, _) in db.store().referrers(c) {
                let vclass = db.store().class_of(v).unwrap();
                nix.insert(&key, set_of(&path_classes, vclass), v, Some(c))
                    .unwrap();
            }
        }
    }

    println!("# U-index vs NIX — combined class-hierarchy/path queries");
    println!(
        "{} vehicles; U-index tree pages: {}, NIX pages (primary + auxiliary): {}\n",
        n_vehicles,
        db.index().tree().pool().live_pages(),
        nix.total_pages()
    );
    println!("{:<44} {:>9} {:>9}", "query", "U-index", "NIX");

    let probe_age = 45i64;
    let key = (probe_age as u64).to_be_bytes().to_vec();
    let all_vehicle_sets: Vec<SetId> = [vehicle, automobile, compact, truck]
        .iter()
        .map(|&c| set_of(&path_classes, c))
        .collect();

    // 1. Whole vehicle sub-tree for one age.
    let (_, u) = db
        .index_mut()
        .query(
            &Query::on(idx)
                .value(ValuePred::eq(Value::Int(probe_age)))
                .class_at(2, ClassSel::SubTree(vehicle)),
        )
        .unwrap();
    let mut sets = all_vehicle_sets.clone();
    sets.sort();
    let (_, nx) = nix.exact(&key, &sets).unwrap();
    println!(
        "{:<44} {:>9} {:>9}",
        "vehicles (whole sub-tree), age = 45", u.pages_read, nx.pages
    );

    // 2. Single dispersed sub-class (Truck).
    let (_, u) = db
        .index_mut()
        .query(
            &Query::on(idx)
                .value(ValuePred::eq(Value::Int(probe_age)))
                .class_at(2, ClassSel::Exact(truck)),
        )
        .unwrap();
    let (_, nx) = nix.exact(&key, &[set_of(&path_classes, truck)]).unwrap();
    println!(
        "{:<44} {:>9} {:>9}",
        "trucks only, age = 45", u.pages_read, nx.pages
    );

    // 3. Mid-path restriction: vehicles of ONE company with president age
    //    45. U-index: clustered skip. NIX: read all vehicles of the value,
    //    then check each one's parent in the auxiliary structure.
    let target_company = companies
        .iter()
        .copied()
        .find(|&c| {
            let p = db.store().follow_ref(c, "President").unwrap().unwrap();
            db.store().attr(p, "Age").unwrap() == Some(&Value::Int(probe_age))
        })
        .expect("some company has a 45-year-old president");
    let (hits, u) = db
        .index_mut()
        .query(
            &Query::on(idx)
                .value(ValuePred::eq(Value::Int(probe_age)))
                .oid_at(1, OidSel::Is(target_company)),
        )
        .unwrap();
    let (cands, nx0) = nix.exact(&key, &sets).unwrap();
    let mut nix_pages = nx0.pages;
    let mut kept = 0;
    for (set, v) in &cands {
        let (parents, cost) = nix.parents(*set, *v).unwrap();
        nix_pages += cost.pages;
        if parents.contains(&target_company) {
            kept += 1;
        }
    }
    println!(
        "{:<44} {:>9} {:>9}",
        "vehicles of one company, age = 45", u.pages_read, nix_pages
    );
    assert_eq!(hits.len(), kept, "U-index and NIX agree on the result");

    // 4. Range query over ages (NIX's predicted strength).
    let (_, u) = db
        .index_mut()
        .query(
            &Query::on(idx)
                .value(ValuePred::between(Value::Int(30), Value::Int(50)))
                .class_at(2, ClassSel::Exact(truck)),
        )
        .unwrap();
    let lo = 30u64.to_be_bytes().to_vec();
    let hi = 51u64.to_be_bytes().to_vec();
    let (_, nx) = nix
        .range(&lo, &hi, &[set_of(&path_classes, truck)])
        .unwrap();
    println!(
        "{:<44} {:>9} {:>9}",
        "trucks, ages 30..=50 (range)", u.pages_read, nx.pages
    );

    // 5. Update cost: an employee's age changes (end-of-path object).
    //    U-index rewrites its entries in the one tree; NIX must rewrite the
    //    primary directory AND the auxiliary entries stay (two structures
    //    were written at build time — report structure page counts).
    println!(
        "\nstorage: U-index single tree = {} pages; NIX = {} pages ({}x)",
        db.index().tree().pool().live_pages(),
        nix.total_pages(),
        nix.total_pages() / db.index().tree().pool().live_pages().max(1)
    );
    println!(
        "\n§4.4 predictions checked: sub-tree and mid-path-restricted queries favor \
         the U-index; dispersed single classes and value ranges favor NIX; NIX pays \
         double storage for its auxiliary structures."
    );
}
