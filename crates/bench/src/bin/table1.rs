//! Experiment 1 (paper §5, Table 1): twenty queries against the 12,000
//! record vehicle database, reporting the number of visited nodes, with the
//! forward-scanning column for the query families the paper compares
//! (queries 3 and 4).
//!
//! The query set lives in [`workload::vehicle::table1_queries`], shared
//! with the EXPLAIN ANALYZE acceptance test so benched and explained
//! queries cannot drift apart.
//!
//! Usage: `cargo run --release -p bench --bin table1`
//! (set `VEHICLES` to shrink the database for smoke runs).

use uindex::{Query, ScanStats};
use workload::vehicle::{generate, table1_queries, VehicleWorkload};

struct Row {
    id: &'static str,
    parallel: ScanStats,
    forward: Option<ScanStats>,
}

fn run(w: &mut VehicleWorkload, q: &Query) -> ScanStats {
    w.db.query_with_stats(q).expect("query").1
}

fn main() {
    let n: usize = std::env::var("VEHICLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000);
    // Seed chosen so the small supporting populations give every query a
    // non-empty answer (some seeds leave no AutoCompany president over 50,
    // which makes queries 5a/6a/6b trivially empty).
    let mut w = generate(2028, n, 10).expect("generate");
    let stats = w.db.index_mut().verify().expect("verify");
    println!("# Table 1 — class-hierarchy, range, path and combined queries");
    println!(
        "database: {n} vehicles; shared U-index B-tree: {} nodes ({} internal, {} leaves), height {}",
        stats.total_nodes(),
        stats.internal_nodes,
        stats.leaf_nodes,
        stats.height
    );
    println!("(paper: ~1562 nodes for the 12,000-record color index alone, m = 10)\n");

    let queries = table1_queries(&w);
    let mut rows: Vec<Row> = Vec::with_capacity(queries.len());
    for tq in &queries {
        let parallel = run(&mut w, &tq.query);
        let forward = tq
            .forward_compare
            .then(|| run(&mut w, &tq.query.clone().forward_scan()));
        rows.push(Row {
            id: tq.id,
            parallel,
            forward,
        });
    }

    println!(
        "{:>6}  {:>14}  {:>17}  {:>8}",
        "query", "visited nodes", "forward scanning", "matches"
    );
    for r in &rows {
        let fwd = r
            .forward
            .map(|f| format!("{}", f.pages_read))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>6}  {:>14}  {:>17}  {:>8}",
            r.id, r.parallel.pages_read, fwd, r.parallel.matches
        );
    }
    println!(
        "\n'visited nodes' = distinct B-tree pages touched by the parallel retrieval \
         algorithm; the forward column repeats the query with plain forward scanning."
    );
}
