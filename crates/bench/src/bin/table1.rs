//! Experiment 1 (paper §5, Table 1): twenty queries against the 12,000
//! record vehicle database, reporting the number of visited nodes, with the
//! forward-scanning column for the query families the paper compares
//! (queries 3 and 4).
//!
//! Usage: `cargo run --release -p bench --bin table1`
//! (set `VEHICLES` to shrink the database for smoke runs).

use objstore::Value;
use uindex::{ClassSel, Query, ScanStats, ValuePred};
use workload::vehicle::{generate, VehicleWorkload};

fn colors(n: usize) -> ValuePred {
    let cols = ["Red", "Blue", "Green"];
    if n == 1 {
        ValuePred::eq(Value::Str(cols[0].into()))
    } else {
        ValuePred::In(
            cols[..n]
                .iter()
                .map(|c| Value::Str((*c).to_string()))
                .collect(),
        )
    }
}

struct Row {
    id: &'static str,
    parallel: ScanStats,
    forward: Option<ScanStats>,
}

fn run(w: &mut VehicleWorkload, q: &Query) -> ScanStats {
    w.db.query_with_stats(q).expect("query").1
}

fn main() {
    let n: usize = std::env::var("VEHICLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000);
    // Seed chosen so the small supporting populations give every query a
    // non-empty answer (some seeds leave no AutoCompany president over 50,
    // which makes queries 5a/6a/6b trivially empty).
    let mut w = generate(2028, n, 10).expect("generate");
    let stats = w.db.index_mut().verify().expect("verify");
    println!("# Table 1 — class-hierarchy, range, path and combined queries");
    println!(
        "database: {n} vehicles; shared U-index B-tree: {} nodes ({} internal, {} leaves), height {}",
        stats.total_nodes(),
        stats.internal_nodes,
        stats.leaf_nodes,
        stats.height
    );
    println!("(paper: ~1562 nodes for the 12,000-record color index alone, m = 10)\n");

    let c = w.classes;
    let mut rows: Vec<Row> = Vec::new();

    // Queries 1/1a/1b/1c: all Buses, then restricted to 1..3 colors.
    let base1 = Query::on(w.color_index).class_at(0, ClassSel::SubTree(c.bus));
    rows.push(Row {
        id: "1",
        parallel: run(&mut w, &base1),
        forward: None,
    });
    for (id, ncolors) in [("1a", 1), ("1b", 2), ("1c", 3)] {
        let q = base1.clone().value(colors(ncolors));
        rows.push(Row {
            id,
            parallel: run(&mut w, &q),
            forward: None,
        });
    }

    // Queries 2/2a/2b/2c: PassengerBuses (a deeper sub-tree).
    let base2 = Query::on(w.color_index).class_at(0, ClassSel::SubTree(c.passenger_bus));
    rows.push(Row {
        id: "2",
        parallel: run(&mut w, &base2),
        forward: None,
    });
    for (id, ncolors) in [("2a", 1), ("2b", 2), ("2c", 3)] {
        let q = base2.clone().value(colors(ncolors));
        rows.push(Row {
            id,
            parallel: run(&mut w, &q),
            forward: None,
        });
    }

    // Queries 3/3a/3b/3c: Automobiles — parallel vs forward scanning.
    let base3 = Query::on(w.color_index).class_at(0, ClassSel::SubTree(c.automobile));
    for (id, ncolors) in [("3", 0), ("3a", 1), ("3b", 2), ("3c", 3)] {
        let q = if ncolors == 0 {
            base3.clone()
        } else {
            base3.clone().value(colors(ncolors))
        };
        rows.push(Row {
            id,
            parallel: run(&mut w, &q),
            forward: Some(run(&mut w, &q.clone().forward_scan())),
        });
    }

    // Queries 4/4a/4b/4c: Compact OR Service automobiles (dispersed
    // sub-classes, ForeignAuto sits between them).
    let sel4 = ClassSel::AnyOf(vec![
        ClassSel::SubTree(c.compact),
        ClassSel::SubTree(c.service_auto),
    ]);
    let base4 = Query::on(w.color_index).class_at(0, sel4);
    for (id, ncolors) in [("4", 0), ("4a", 1), ("4b", 2), ("4c", 3)] {
        let q = if ncolors == 0 {
            base4.clone()
        } else {
            base4.clone().value(colors(ncolors))
        };
        rows.push(Row {
            id,
            parallel: run(&mut w, &q),
            forward: Some(run(&mut w, &q.clone().forward_scan())),
        });
    }

    // Query 5: path index — companies whose president's age is 50 (a) or
    // above 50 (b), deduplicated through the company position (1).
    let q5a = Query::on(w.age_index)
        .value(ValuePred::eq(Value::Int(50)))
        .distinct_through(1);
    rows.push(Row {
        id: "5a",
        parallel: run(&mut w, &q5a),
        forward: None,
    });
    let q5b = Query::on(w.age_index)
        .value(ValuePred::at_least(Value::Int(51)))
        .distinct_through(1);
    rows.push(Row {
        id: "5b",
        parallel: run(&mut w, &q5b),
        forward: None,
    });

    // Query 6: combined index — automobiles made by AutoCompanies whose
    // president's age is above 50 (a); same for Trucks (b).
    let q6a = Query::on(w.age_index)
        .value(ValuePred::at_least(Value::Int(51)))
        .class_at(1, ClassSel::SubTree(c.auto_company))
        .class_at(2, ClassSel::SubTree(c.automobile));
    rows.push(Row {
        id: "6a",
        parallel: run(&mut w, &q6a),
        forward: None,
    });
    let q6b = Query::on(w.age_index)
        .value(ValuePred::at_least(Value::Int(51)))
        .class_at(1, ClassSel::SubTree(c.auto_company))
        .class_at(2, ClassSel::SubTree(c.truck));
    rows.push(Row {
        id: "6b",
        parallel: run(&mut w, &q6b),
        forward: None,
    });

    println!(
        "{:>6}  {:>14}  {:>17}  {:>8}",
        "query", "visited nodes", "forward scanning", "matches"
    );
    for r in &rows {
        let fwd = r
            .forward
            .map(|f| format!("{}", f.pages_read))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>6}  {:>14}  {:>17}  {:>8}",
            r.id, r.parallel.pages_read, fwd, r.parallel.matches
        );
    }
    println!(
        "\n'visited nodes' = distinct B-tree pages touched by the parallel retrieval \
         algorithm; the forward column repeats the query with plain forward scanning."
    );
}
