//! Figure 8: narrow range queries (0.5% and 0.2% of the keyspace) for the
//! 1000-key configuration, plus the near vs non-near detail panels at 10%.
//!
//! Usage: `cargo run --release -p bench --bin fig8`

use bench::{num_objects, print_panel, run_panel, QueryKind};
use workload::uniform::KeyCount;

fn main() {
    let objects = num_objects();
    println!(
        "# Figure 8 — Narrow ranges and set-adjacency detail ({objects} objects, {} reps)",
        bench::reps()
    );
    for (name, frac) in [("0.5% of keyspace", 0.005), ("0.2% of keyspace", 0.002)] {
        for num_sets in [40u16, 8] {
            let points = run_panel(
                QueryKind::Range(frac),
                objects,
                num_sets,
                KeyCount::Distinct(1000),
                81,
            );
            print_panel(
                &format!("Range {name} — {num_sets} sets, 1000 different keys"),
                &points,
            );
        }
    }
    // Near vs non-near detail (the bottom panels of the paper's Figure 8):
    // 10% range, 1000 keys.
    for num_sets in [40u16, 8] {
        let points = run_panel(
            QueryKind::Range(0.10),
            objects,
            num_sets,
            KeyCount::Distinct(1000),
            82,
        );
        print_panel(
            &format!("Near vs non-near sets — range 10%, {num_sets} sets, 1000 different keys"),
            &points,
        );
    }
}
