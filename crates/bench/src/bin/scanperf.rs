//! Scan-path performance: Algorithm 1 with hierarchical reseek vs the flat
//! (full-descent-per-skip) baseline vs forward scanning, over the
//! experiment-2 database shape. Writes machine-readable `BENCH_scan.json`
//! at the repo root so the perf trajectory is tracked across changes.
//!
//! Every workload runs the *identical* query stream under all three
//! algorithms and cross-checks that the hits agree, that the hierarchical
//! and flat parallel scans touch the same distinct pages, and that the
//! parallel scans never read more pages than the forward scan — the bench
//! doubles as an end-to-end consistency check on real workload sizes.
//!
//! `scanperf --disk` runs the *identical* query stream twice — on the
//! in-memory store and on the production on-disk stack (WAL + checksums +
//! file store), the latter bulk-loaded, checkpointed, closed, and
//! **reopened cold** before querying — cross-checks that every query
//! returns identical hits on both tiers and that a brute-force sweep of
//! the raw postings agrees, and writes `BENCH_disk.json` (pages, fsyncs,
//! wall time per tier).
//!
//! `scanperf --smoke` runs a tiny configuration and skips the JSON write
//! (the CI hook); the flags combine (`--smoke --disk`).

use std::fmt::Write as _;
use std::time::Instant;

use baselines::SetId;
use objstore::Oid;
use pagestore::{disk as pdisk, BufferPool, PageStore};
use uindex::{ScanAlgorithm, ScanStats};
use workload::uniform::{
    generate_postings, key_bytes, key_space, KeyCount, UIndexSet, UniformConfig,
};

const ALGOS: [(ScanAlgorithm, &str); 3] = [
    (ScanAlgorithm::Parallel, "parallel"),
    (ScanAlgorithm::ParallelFlat, "parallel_flat"),
    (ScanAlgorithm::Forward, "forward"),
];

#[derive(Clone, Copy)]
enum Shape {
    Exact,
    /// Range spanning this many thousandths of the key space.
    Range(u32),
}

struct Workload {
    name: &'static str,
    shape: Shape,
    num_sets: usize,
    queries: u32,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Acc {
    pages_read: u64,
    node_visits: u64,
    entries_examined: u64,
    seeks: u64,
    descents: u64,
    reseek_depth_total: u64,
    wall_nanos: u128,
}

impl Acc {
    fn add(&mut self, s: &ScanStats) {
        self.pages_read += s.pages_read;
        self.node_visits += s.node_visits;
        self.entries_examined += s.entries_examined;
        self.seeks += s.seeks;
        self.descents += s.descents;
        self.reseek_depth_total += s.reseek_depth_total;
    }

    /// Cumulative `uindex.scan.*` registry counters, as an [`Acc`]. The
    /// reported numbers are registry deltas (sampled around each algorithm
    /// pass); the per-query [`ScanStats`] sums serve as a cross-check.
    fn from_registry() -> Acc {
        Acc {
            pages_read: telemetry::counter_value("uindex.scan.pages"),
            node_visits: telemetry::counter_value("uindex.scan.node_visits"),
            entries_examined: telemetry::counter_value("uindex.scan.entries_examined"),
            seeks: telemetry::counter_value("uindex.scan.skips"),
            descents: telemetry::counter_value("uindex.scan.descents"),
            reseek_depth_total: telemetry::counter_value("uindex.scan.reseek_depth"),
            wall_nanos: 0,
        }
    }

    fn minus(self, earlier: Acc) -> Acc {
        Acc {
            pages_read: self.pages_read - earlier.pages_read,
            node_visits: self.node_visits - earlier.node_visits,
            entries_examined: self.entries_examined - earlier.entries_examined,
            seeks: self.seeks - earlier.seeks,
            descents: self.descents - earlier.descents,
            reseek_depth_total: self.reseek_depth_total - earlier.reseek_depth_total,
            wall_nanos: 0,
        }
    }

    fn to_json(self, out: &mut String, indent: &str) {
        let _ = write!(
            out,
            "{indent}{{\"pages_read\": {}, \"node_visits\": {}, \"entries_examined\": {}, \
             \"seeks\": {}, \"descents\": {}, \"reseek_depth_total\": {}, \"wall_ms\": {:.3}}}",
            self.pages_read,
            self.node_visits,
            self.entries_examined,
            self.seeks,
            self.descents,
            self.reseek_depth_total,
            self.wall_nanos as f64 / 1e6,
        );
    }
}

/// Deterministic query stream: `(lo, hi, sets)` per query.
fn query_stream(w: &Workload, keys: u32, seed: u64) -> Vec<(Vec<u8>, Vec<u8>, Vec<SetId>)> {
    // SplitMix64, same generator the oracle harness uses.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut out = Vec::with_capacity(w.queries as usize);
    for _ in 0..w.queries {
        let start = (next() % keys as u64) as u32;
        let (lo, hi) = match w.shape {
            Shape::Exact => {
                let lo = key_bytes(start);
                let mut hi = lo.clone();
                hi.push(0);
                (lo, hi)
            }
            Shape::Range(permille) => {
                let span = (keys as u64 * permille as u64 / 1000).max(1) as u32;
                let start = start.min(keys.saturating_sub(span));
                (key_bytes(start), key_bytes(start + span))
            }
        };
        let first = (next() % 8) as u16;
        let sets: Vec<SetId> = (0..w.num_sets as u16)
            .map(|i| SetId((first + i) % 8))
            .collect();
        out.push((lo, hi, sets));
    }
    out
}

/// Run the workload's query stream under all three algorithms; returns the
/// per-algorithm accumulators and the (parallel-scan) hits of every query,
/// for cross-tier comparison.
fn run_workload<P: PageStore>(
    u: &mut UIndexSet<P>,
    w: &Workload,
    keys: u32,
) -> ([Acc; 3], Vec<Vec<(SetId, Oid)>>) {
    let stream = query_stream(w, keys, 0x5CA9_F0CE_5EED_0001);
    let mut accs = [Acc::default(); 3];
    let mut reference: Vec<(Vec<(SetId, Oid)>, u64)> = Vec::new();
    for (ai, (algo, aname)) in ALGOS.iter().enumerate() {
        u.use_algorithm(*algo);
        let mut legacy = Acc::default();
        let reg0 = Acc::from_registry();
        let started = Instant::now();
        for (qi, (lo, hi, sets)) in stream.iter().enumerate() {
            let mut sorted = sets.clone();
            sorted.sort();
            let (hits, stats) = match w.shape {
                Shape::Exact => u.exact_stats(lo, &sorted).expect("query"),
                Shape::Range(_) => u.range_stats(lo, hi, &sorted).expect("query"),
            };
            legacy.add(&stats);
            if ai == 0 {
                reference.push((hits, stats.pages_read));
            } else {
                let (ref_hits, ref_pages) = &reference[qi];
                assert_eq!(
                    &hits, ref_hits,
                    "{}: algorithms disagree on query {qi}",
                    w.name
                );
                // Per-query: hierarchical reseek must leave the distinct
                // page set exactly as the flat (pre-reseek) algorithm's —
                // it only avoids *re*-fetching pages the query already
                // touched. (Forward is compared on hits only: a skip-seek
                // can legitimately descend through an interior node the
                // forward leaf-chain walk bypasses via `leaf.next`.)
                if ALGOS[ai].0 == ScanAlgorithm::ParallelFlat {
                    assert_eq!(
                        *ref_pages, stats.pages_read,
                        "{}: query {qi} pages_read changed under hierarchical \
                         reseek",
                        w.name
                    );
                }
            }
        }
        let wall_nanos = started.elapsed().as_nanos();
        // The reported numbers come from the telemetry registry; the summed
        // per-query ScanStats must agree exactly, or the two accounting
        // paths have drifted.
        let mut acc = Acc::from_registry().minus(reg0);
        assert_eq!(
            acc, legacy,
            "{} ({aname}): registry deltas diverge from summed ScanStats",
            w.name
        );
        acc.wall_nanos = wall_nanos;
        accs[ai] = acc;
    }
    u.use_algorithm(ScanAlgorithm::Parallel);
    let hits = reference.into_iter().map(|(h, _)| h).collect();
    (accs, hits)
}

fn workloads(queries: u32) -> [Workload; 4] {
    [
        Workload {
            name: "exact_k4",
            shape: Shape::Exact,
            num_sets: 4,
            queries,
        },
        Workload {
            name: "range10_k1",
            shape: Shape::Range(100),
            num_sets: 1,
            queries: queries / 4,
        },
        Workload {
            name: "range10_k4",
            shape: Shape::Range(100),
            num_sets: 4,
            queries: queries / 4,
        },
        Workload {
            name: "range1_k2",
            shape: Shape::Range(10),
            num_sets: 2,
            queries,
        },
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let disk = std::env::args().any(|a| a == "--disk");
    let threads = std::env::args().any(|a| a == "--threads");
    if threads {
        run_threads(smoke);
    } else if disk {
        run_disk(smoke);
    } else {
        run_mem(smoke);
    }
}

fn run_mem(smoke: bool) {
    let objects: u32 = if smoke {
        5_000
    } else {
        std::env::var("OBJECTS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(50_000)
    };
    let queries: u32 = if smoke { 20 } else { 200 };

    let cfg = UniformConfig {
        num_objects: objects,
        num_sets: 8,
        keys: KeyCount::Distinct(1000),
        seed: 42,
    };
    let postings = generate_postings(&cfg);
    let keys = key_space(&cfg);
    let mut u = UIndexSet::build(8, &postings).expect("build U-index");

    let workloads = workloads(queries);

    println!(
        "scanperf: {objects} objects, 8 sets, {keys} distinct keys{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "workload", "algorithm", "pages", "visits", "seeks", "descents", "wall ms"
    );

    // Provenance header (documented in docs/bench-format.md): enough to
    // reproduce and attribute the numbers — generator seed, workload name,
    // object count, and a git-describable tool version.
    let provenance = telemetry::Provenance {
        seed: cfg.seed,
        workload: "uniform-scan".into(),
        objects: objects as u64,
        version: telemetry::tool_version(env!("CARGO_PKG_VERSION")),
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"provenance\": {},", provenance.to_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"objects\": {objects}, \"sets\": 8, \"distinct_keys\": {keys}, \
         \"page_size\": 1024, \"queries_per_workload\": {queries}}},"
    );
    json.push_str("  \"workloads\": {\n");

    let mut skip_heavy: Option<(u64, u64)> = None;
    for (wi, w) in workloads.iter().enumerate() {
        let (accs, _) = run_workload(&mut u, w, keys);
        let (par, flat) = (&accs[0], &accs[1]);
        // Hierarchical reseek must not change the distinct page set and
        // must never visit more nodes than flat skip-seeking.
        assert_eq!(
            par.pages_read, flat.pages_read,
            "{}: hierarchical reseek changed pages_read",
            w.name
        );
        assert!(
            par.node_visits <= flat.node_visits,
            "{}: hierarchical reseek increased node visits",
            w.name
        );
        for (ai, (_, aname)) in ALGOS.iter().enumerate() {
            println!(
                "{:<12} {:>14} {:>12} {:>12} {:>10} {:>10} {:>10.1}",
                if ai == 0 { w.name } else { "" },
                aname,
                accs[ai].pages_read,
                accs[ai].node_visits,
                accs[ai].seeks,
                accs[ai].descents,
                accs[ai].wall_nanos as f64 / 1e6,
            );
        }
        if w.name == "range10_k1" {
            skip_heavy = Some((flat.node_visits, par.node_visits));
        }
        let _ = writeln!(json, "    \"{}\": {{", w.name);
        for (ai, (_, aname)) in ALGOS.iter().enumerate() {
            let _ = write!(json, "      \"{aname}\": ");
            accs[ai].to_json(&mut json, "");
            json.push_str(if ai + 1 < ALGOS.len() { ",\n" } else { "\n" });
        }
        json.push_str(if wi + 1 < workloads.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  },\n");

    let (before, after) = skip_heavy.expect("skip-heavy workload ran");
    let reduction = 100.0 * (before.saturating_sub(after)) as f64 / before.max(1) as f64;
    let _ = writeln!(
        json,
        "  \"summary\": {{\"skip_heavy_workload\": \"range10_k1\", \
         \"node_visits_before_reseek\": {before}, \"node_visits_after_reseek\": {after}, \
         \"reduction_pct\": {reduction:.1}}}"
    );
    json.push_str("}\n");

    println!(
        "\nskip-heavy (range10_k1) node_visits: {before} flat -> {after} hierarchical \
         ({reduction:.1}% reduction)"
    );

    if smoke {
        println!("smoke run: BENCH_scan.json not written");
        return;
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_scan.json");
    std::fs::write(&path, json).expect("write BENCH_scan.json");
    println!("wrote {}", path.display());
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Per-thread-count timing row: `(threads, wall_ms, queries_per_sec)`.
type ThreadTiming = (usize, f64, f64);

/// One tier of the concurrency bench: run the identical query stream at
/// every thread count through [`uindex::parallel_query`], cross-check that
/// per-query hits and per-query `ScanStats` are bit-identical to the
/// single-threaded pass, and return `(wall_ms, queries_per_sec)` per
/// thread count plus the reference hits (for cross-tier comparison).
fn run_tier_threads<P: PageStore + Send + Sync>(
    reader: &uindex::DatabaseReader<P>,
    queries: &[uindex::Query],
) -> (Vec<ThreadTiming>, Vec<Vec<uindex::QueryHit>>) {
    // Warm pass: fills the buffer pool and serves as the reference run, so
    // every timed pass (including 1 thread) measures warm scans.
    let reference = uindex::parallel_query(reader, queries, 1).expect("warm pass");
    let reference: Vec<(Vec<uindex::QueryHit>, ScanStats)> =
        reference.into_iter().collect::<Vec<_>>();

    let mut timings = Vec::new();
    let mut wall_1 = 0.0f64;
    for &t in &THREAD_COUNTS {
        let started = Instant::now();
        let results = uindex::parallel_query(reader, queries, t).expect("threaded pass");
        let wall_ms = started.elapsed().as_nanos() as f64 / 1e6;
        assert_eq!(results.len(), reference.len());
        for (qi, ((hits, stats), (ref_hits, ref_stats))) in
            results.iter().zip(&reference).enumerate()
        {
            assert_eq!(hits, ref_hits, "query {qi}: hits differ at {t} threads");
            assert_eq!(
                stats, ref_stats,
                "query {qi}: per-query stats differ at {t} threads"
            );
        }
        if t == 1 {
            wall_1 = wall_ms;
        }
        let qps = queries.len() as f64 / (wall_ms / 1e3);
        timings.push((t, wall_ms, qps));
        println!(
            "    {t:>2} threads: {wall_ms:>10.1} ms  {qps:>10.0} q/s  (speedup {:.2}x)",
            wall_1 / wall_ms
        );
    }
    (timings, reference.into_iter().map(|(h, _)| h).collect())
}

/// `scanperf --threads`: the identical read-only query stream at 1/2/4/8
/// worker threads on both tiers. Per-query hits and stats must be
/// bit-identical to the single-threaded run at every thread count; wall
/// time and aggregate throughput per thread count go to
/// `BENCH_concurrent.json`. The >= 3x speedup-at-4-threads assertion only
/// fires on hosts that actually have >= 4 CPUs (it is recorded either way).
fn run_threads(smoke: bool) {
    let objects: u32 = if smoke {
        5_000
    } else {
        std::env::var("OBJECTS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1_000_000)
    };
    let queries: u32 = if smoke { 16 } else { 160 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let cfg = UniformConfig {
        num_objects: objects,
        num_sets: 8,
        keys: KeyCount::Distinct(1000),
        seed: 42,
    };
    let postings = generate_postings(&cfg);
    let keys = key_space(&cfg);

    println!(
        "scanperf --threads: {objects} objects, 8 sets, {keys} distinct keys, \
         {host_cpus} host cpus{}",
        if smoke { " (smoke)" } else { "" }
    );

    // Mixed read-only stream: exact probes (cheap, many) plus 10%-of-key-
    // space ranges (expensive, few). The skew is the point — dynamic work
    // claiming has to balance it.
    let exact_w = Workload {
        name: "exact_k4",
        shape: Shape::Exact,
        num_sets: 4,
        queries,
    };
    let range_w = Workload {
        name: "range10_k2",
        shape: Shape::Range(100),
        num_sets: 2,
        queries: queries / 4,
    };

    let build_query_stream = |u: &UIndexSet<_>| -> Vec<uindex::Query> {
        let mut out = Vec::new();
        for w in [&exact_w, &range_w] {
            for (lo, hi, sets) in query_stream(w, keys, 0x5CA9_F0CE_5EED_0002) {
                let mut sorted = sets.clone();
                sorted.sort();
                out.push(match w.shape {
                    Shape::Exact => u.exact_query(&lo, &sorted),
                    Shape::Range(_) => u.range_query(&lo, &hi, &sorted),
                });
            }
        }
        out
    };

    // --- Tier 1: in-memory. ---
    println!("  mem tier:");
    let mut mem = UIndexSet::build(8, &postings).expect("build mem U-index");
    let stream = build_query_stream(&mem);
    let mem_reader = mem.reader();
    let (mem_timings, mem_hits) = run_tier_threads(&mem_reader, &stream);
    drop(mem_reader);
    drop(mem);

    // --- Tier 2: on-disk stack, reopened cold before querying. ---
    println!("  disk tier:");
    let dir = std::env::temp_dir().join(format!("uindex_scanperf_thr_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut stack = pdisk::create(&dir, DISK_PAGE_SIZE).expect("create disk stack");
    stack.set_group_commit(DISK_GROUP_COMMIT);
    let pool = BufferPool::new(stack, DISK_POOL_PAGES);
    let mut disk = UIndexSet::build_with_pool(pool, 8, &postings).expect("build disk U-index");
    let (root, len) = disk.persist().expect("persist disk U-index");
    let mut stack = disk.into_pool().into_store();
    stack.checkpoint().expect("checkpoint disk stack");
    drop(stack);
    let stack = pdisk::open(&dir).expect("reopen disk stack");
    let pool = BufferPool::new(stack, DISK_POOL_PAGES);
    let mut disk = UIndexSet::open(pool, root, len).expect("reattach via catalog");
    let disk_reader = disk.reader();
    let (disk_timings, disk_hits) = run_tier_threads(&disk_reader, &stream);

    // Cross-tier: the same stream must answer identically on both stacks.
    assert_eq!(mem_hits.len(), disk_hits.len());
    for (qi, (m, d)) in mem_hits.iter().zip(&disk_hits).enumerate() {
        assert_eq!(
            m, d,
            "query {qi}: hits differ between MemStore and FileStore"
        );
    }
    drop(disk_reader);
    drop(disk);
    std::fs::remove_dir_all(&dir).ok();

    let speedup_at = |timings: &[ThreadTiming], t: usize| -> f64 {
        let wall_1 = timings.iter().find(|(n, ..)| *n == 1).unwrap().1;
        let wall_t = timings.iter().find(|(n, ..)| *n == t).unwrap().1;
        wall_1 / wall_t
    };
    let mem_speedup4 = speedup_at(&mem_timings, 4);
    let disk_speedup4 = speedup_at(&disk_timings, 4);
    println!(
        "\n4-thread speedup: mem {mem_speedup4:.2}x, disk {disk_speedup4:.2}x \
         ({} queries, hits identical across all thread counts and tiers)",
        stream.len()
    );
    let scaling_asserted = !smoke && host_cpus >= 4;
    if scaling_asserted {
        assert!(
            mem_speedup4 >= 3.0,
            "mem tier 4-thread speedup {mem_speedup4:.2}x < 3x on a {host_cpus}-cpu host"
        );
    } else {
        println!(
            "scaling assertion skipped ({}); speedups recorded, not enforced",
            if smoke {
                "smoke run".to_string()
            } else {
                format!("{host_cpus} host cpu(s) < 4")
            }
        );
    }

    if smoke {
        println!("smoke run: BENCH_concurrent.json not written");
        return;
    }

    let provenance = telemetry::Provenance {
        seed: cfg.seed,
        workload: "uniform-scan-concurrent".into(),
        objects: objects as u64,
        version: telemetry::tool_version(env!("CARGO_PKG_VERSION")),
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"provenance\": {},", provenance.to_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"objects\": {objects}, \"sets\": 8, \"distinct_keys\": {keys}, \
         \"page_size\": {DISK_PAGE_SIZE}, \"pool_pages\": {DISK_POOL_PAGES}, \
         \"queries\": {}, \"thread_counts\": [1, 2, 4, 8], \"host_cpus\": {host_cpus}}},",
        stream.len()
    );
    json.push_str("  \"tiers\": {\n");
    for (ti, (tier, timings)) in [("mem", &mem_timings), ("disk", &disk_timings)]
        .iter()
        .enumerate()
    {
        let _ = writeln!(json, "    \"{tier}\": {{");
        for (i, (t, wall_ms, qps)) in timings.iter().enumerate() {
            let _ = write!(
                json,
                "      \"{t}\": {{\"wall_ms\": {wall_ms:.1}, \"queries_per_sec\": {qps:.0}, \
                 \"speedup_vs_1\": {:.3}}}",
                speedup_at(timings, *t)
            );
            json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
        }
        json.push_str(if ti == 0 { "    },\n" } else { "    }\n" });
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"summary\": {{\"hits_identical\": true, \"mem_speedup_at_4\": {mem_speedup4:.3}, \
         \"disk_speedup_at_4\": {disk_speedup4:.3}, \"host_cpus\": {host_cpus}, \
         \"scaling_asserted\": {scaling_asserted}}}"
    );
    json.push_str("}\n");

    let root_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root_dir.join("BENCH_concurrent.json");
    std::fs::write(&path, json).expect("write BENCH_concurrent.json");
    println!("wrote {}", path.display());
}

/// Brute-force reference over the raw postings: `lo <= key < hi` and the
/// set is selected. (The exact-shape stream encodes an exact probe as
/// `[lo, lo + "\0")`, so one filter covers both shapes.)
fn brute(
    postings: &[(Vec<u8>, SetId, Oid)],
    lo: &[u8],
    hi: &[u8],
    sets: &[SetId],
) -> Vec<(SetId, Oid)> {
    let mut out: Vec<(SetId, Oid)> = postings
        .iter()
        .filter(|(k, s, _)| k.as_slice() >= lo && k.as_slice() < hi && sets.contains(s))
        .map(|(_, s, o)| (*s, *o))
        .collect();
    out.sort();
    out
}

const DISK_PAGE_SIZE: usize = 1024;
const DISK_POOL_PAGES: usize = 1 << 17;
const DISK_GROUP_COMMIT: u32 = 8;

/// MemStore vs the on-disk stack under the identical query stream. The
/// disk index is bulk-loaded, checkpointed, **closed and reopened cold**
/// before its query passes, so its numbers include real file reads.
fn run_disk(smoke: bool) {
    let objects: u32 = if smoke {
        5_000
    } else {
        std::env::var("OBJECTS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1_000_000)
    };
    let queries: u32 = if smoke { 20 } else { 200 };

    let cfg = UniformConfig {
        num_objects: objects,
        num_sets: 8,
        keys: KeyCount::Distinct(1000),
        seed: 42,
    };
    let postings = generate_postings(&cfg);
    let keys = key_space(&cfg);
    let workloads = workloads(queries);

    println!(
        "scanperf --disk: {objects} objects, 8 sets, {keys} distinct keys{}",
        if smoke { " (smoke)" } else { "" }
    );

    // --- Tier 1: in-memory build + query passes. ---
    let mem_build_start = Instant::now();
    let mut mem = UIndexSet::build(8, &postings).expect("build mem U-index");
    let mem_build_ms = mem_build_start.elapsed().as_nanos() as f64 / 1e6;
    let mut mem_accs = Vec::new();
    let mut mem_hits = Vec::new();
    for w in &workloads {
        let (accs, hits) = run_workload(&mut mem, w, keys);
        mem_accs.push(accs);
        mem_hits.push(hits);
    }
    drop(mem);

    // --- Tier 2: on-disk build, checkpoint, close; reopen cold; query. ---
    let dir = std::env::temp_dir().join(format!("uindex_scanperf_disk_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let fsyncs0 = telemetry::counter_value("pagestore.wal.fsyncs");
    let appends0 = telemetry::counter_value("pagestore.wal.appends");

    let disk_build_start = Instant::now();
    let mut stack = pdisk::create(&dir, DISK_PAGE_SIZE).expect("create disk stack");
    stack.set_group_commit(DISK_GROUP_COMMIT);
    let pool = BufferPool::new(stack, DISK_POOL_PAGES);
    let mut disk = UIndexSet::build_with_pool(pool, 8, &postings).expect("build disk U-index");
    let (root, len) = disk.persist().expect("persist disk U-index");
    let mut stack = disk.into_pool().into_store();
    stack.checkpoint().expect("checkpoint disk stack");
    let disk_build_ms = disk_build_start.elapsed().as_nanos() as f64 / 1e6;
    let live_pages = stack.live_pages();
    drop(stack); // close the files: the reopen below starts cold
    let build_fsyncs = telemetry::counter_value("pagestore.wal.fsyncs") - fsyncs0;
    let build_appends = telemetry::counter_value("pagestore.wal.appends") - appends0;

    let reopen_start = Instant::now();
    let stack = pdisk::open(&dir).expect("reopen disk stack");
    assert!(stack.recovery().is_some(), "reopen must report recovery");
    let pool = BufferPool::new(stack, DISK_POOL_PAGES);
    let mut disk = UIndexSet::open(pool, root, len).expect("reattach via catalog");
    let reopen_ms = reopen_start.elapsed().as_nanos() as f64 / 1e6;

    println!(
        "build: mem {mem_build_ms:.0} ms; disk {disk_build_ms:.0} ms \
         ({live_pages} pages, {build_fsyncs} fsyncs, {build_appends} WAL appends); \
         reopen {reopen_ms:.1} ms"
    );
    println!(
        "{:<12} {:>6} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "workload", "tier", "algorithm", "pages", "visits", "wall ms", "oracle"
    );

    // --- Disk query passes: identical stream, hits must match tier 1 and
    // a brute-force sweep of the raw postings. ---
    let mut disk_accs = Vec::new();
    let mut oracle_checked = 0usize;
    for (wi, w) in workloads.iter().enumerate() {
        let (accs, hits) = run_workload(&mut disk, w, keys);
        assert_eq!(
            hits.len(),
            mem_hits[wi].len(),
            "{}: query count diverged across tiers",
            w.name
        );
        for (qi, h) in hits.iter().enumerate() {
            assert_eq!(
                h, &mem_hits[wi][qi],
                "{}: query {qi} hits differ between MemStore and FileStore",
                w.name
            );
        }
        // Brute-force oracle on a prefix of the stream (the full sweep is
        // O(queries * objects); the prefix keeps the bench tractable while
        // still checking every workload shape on the reopened store).
        let stream = query_stream(w, keys, 0x5CA9_F0CE_5EED_0001);
        let checks = stream.len().min(25);
        for (qi, (lo, hi, sets)) in stream.iter().take(checks).enumerate() {
            let expect = brute(&postings, lo, hi, sets);
            assert_eq!(
                hits[qi], expect,
                "{}: query {qi} diverges from the brute-force oracle",
                w.name
            );
        }
        oracle_checked += checks;
        for (tier, accs) in [("mem", &mem_accs[wi]), ("disk", &accs)] {
            for (ai, (_, aname)) in ALGOS.iter().enumerate() {
                println!(
                    "{:<12} {:>6} {:>14} {:>12} {:>12} {:>12.1} {:>12}",
                    if tier == "mem" && ai == 0 { w.name } else { "" },
                    tier,
                    aname,
                    accs[ai].pages_read,
                    accs[ai].node_visits,
                    accs[ai].wall_nanos as f64 / 1e6,
                    if tier == "disk" && ai == 0 {
                        format!("{checks} ok")
                    } else {
                        String::new()
                    },
                );
            }
        }
        disk_accs.push(accs);
    }
    let query_fsyncs = telemetry::counter_value("pagestore.wal.fsyncs") - fsyncs0 - build_fsyncs;
    assert_eq!(query_fsyncs, 0, "read-only query passes must not fsync");
    drop(disk);
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "\nall {} queries identical across tiers; {oracle_checked} checked against the \
         brute-force oracle on the reopened store",
        mem_hits.iter().map(Vec::len).sum::<usize>(),
    );

    if smoke {
        println!("smoke run: BENCH_disk.json not written");
        return;
    }

    let provenance = telemetry::Provenance {
        seed: cfg.seed,
        workload: "uniform-scan-disk".into(),
        objects: objects as u64,
        version: telemetry::tool_version(env!("CARGO_PKG_VERSION")),
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"provenance\": {},", provenance.to_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"objects\": {objects}, \"sets\": 8, \"distinct_keys\": {keys}, \
         \"page_size\": {DISK_PAGE_SIZE}, \"pool_pages\": {DISK_POOL_PAGES}, \
         \"group_commit\": {DISK_GROUP_COMMIT}, \"queries_per_workload\": {queries}}},"
    );
    let _ = writeln!(
        json,
        "  \"build\": {{\"mem_wall_ms\": {mem_build_ms:.1}, \
         \"disk_wall_ms\": {disk_build_ms:.1}, \"disk_pages\": {live_pages}, \
         \"disk_fsyncs\": {build_fsyncs}, \"disk_wal_appends\": {build_appends}, \
         \"reopen_wall_ms\": {reopen_ms:.3}}},"
    );
    json.push_str("  \"workloads\": {\n");
    for (wi, w) in workloads.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", w.name);
        for (ti, (tier, accs)) in [("mem", &mem_accs[wi]), ("disk", &disk_accs[wi])]
            .iter()
            .enumerate()
        {
            let _ = writeln!(json, "      \"{tier}\": {{");
            for (ai, (_, aname)) in ALGOS.iter().enumerate() {
                let _ = write!(json, "        \"{aname}\": ");
                accs[ai].to_json(&mut json, "");
                json.push_str(if ai + 1 < ALGOS.len() { ",\n" } else { "\n" });
            }
            json.push_str(if ti == 0 { "      },\n" } else { "      }\n" });
        }
        json.push_str(if wi + 1 < workloads.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"summary\": {{\"hits_identical_across_tiers\": true, \
         \"oracle_checked_queries\": {oracle_checked}, \"query_fsyncs\": {query_fsyncs}}}"
    );
    json.push_str("}\n");

    let root_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root_dir.join("BENCH_disk.json");
    std::fs::write(&path, json).expect("write BENCH_disk.json");
    println!("wrote {}", path.display());
}
