//! Scan-path performance: Algorithm 1 with hierarchical reseek vs the flat
//! (full-descent-per-skip) baseline vs forward scanning, over the
//! experiment-2 database shape. Writes machine-readable `BENCH_scan.json`
//! at the repo root so the perf trajectory is tracked across changes.
//!
//! Every workload runs the *identical* query stream under all three
//! algorithms and cross-checks that the hits agree, that the hierarchical
//! and flat parallel scans touch the same distinct pages, and that the
//! parallel scans never read more pages than the forward scan — the bench
//! doubles as an end-to-end consistency check on real workload sizes.
//!
//! `scanperf --smoke` runs a tiny configuration and skips the JSON write
//! (the CI hook).

use std::fmt::Write as _;
use std::time::Instant;

use baselines::SetId;
use uindex::{ScanAlgorithm, ScanStats};
use workload::uniform::{
    generate_postings, key_bytes, key_space, KeyCount, UIndexSet, UniformConfig,
};

const ALGOS: [(ScanAlgorithm, &str); 3] = [
    (ScanAlgorithm::Parallel, "parallel"),
    (ScanAlgorithm::ParallelFlat, "parallel_flat"),
    (ScanAlgorithm::Forward, "forward"),
];

#[derive(Clone, Copy)]
enum Shape {
    Exact,
    /// Range spanning this many thousandths of the key space.
    Range(u32),
}

struct Workload {
    name: &'static str,
    shape: Shape,
    num_sets: usize,
    queries: u32,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Acc {
    pages_read: u64,
    node_visits: u64,
    entries_examined: u64,
    seeks: u64,
    descents: u64,
    reseek_depth_total: u64,
    wall_nanos: u128,
}

impl Acc {
    fn add(&mut self, s: &ScanStats) {
        self.pages_read += s.pages_read;
        self.node_visits += s.node_visits;
        self.entries_examined += s.entries_examined;
        self.seeks += s.seeks;
        self.descents += s.descents;
        self.reseek_depth_total += s.reseek_depth_total;
    }

    /// Cumulative `uindex.scan.*` registry counters, as an [`Acc`]. The
    /// reported numbers are registry deltas (sampled around each algorithm
    /// pass); the per-query [`ScanStats`] sums serve as a cross-check.
    fn from_registry() -> Acc {
        Acc {
            pages_read: telemetry::counter_value("uindex.scan.pages"),
            node_visits: telemetry::counter_value("uindex.scan.node_visits"),
            entries_examined: telemetry::counter_value("uindex.scan.entries_examined"),
            seeks: telemetry::counter_value("uindex.scan.skips"),
            descents: telemetry::counter_value("uindex.scan.descents"),
            reseek_depth_total: telemetry::counter_value("uindex.scan.reseek_depth"),
            wall_nanos: 0,
        }
    }

    fn minus(self, earlier: Acc) -> Acc {
        Acc {
            pages_read: self.pages_read - earlier.pages_read,
            node_visits: self.node_visits - earlier.node_visits,
            entries_examined: self.entries_examined - earlier.entries_examined,
            seeks: self.seeks - earlier.seeks,
            descents: self.descents - earlier.descents,
            reseek_depth_total: self.reseek_depth_total - earlier.reseek_depth_total,
            wall_nanos: 0,
        }
    }

    fn to_json(self, out: &mut String, indent: &str) {
        let _ = write!(
            out,
            "{indent}{{\"pages_read\": {}, \"node_visits\": {}, \"entries_examined\": {}, \
             \"seeks\": {}, \"descents\": {}, \"reseek_depth_total\": {}, \"wall_ms\": {:.3}}}",
            self.pages_read,
            self.node_visits,
            self.entries_examined,
            self.seeks,
            self.descents,
            self.reseek_depth_total,
            self.wall_nanos as f64 / 1e6,
        );
    }
}

/// Deterministic query stream: `(lo, hi, sets)` per query.
fn query_stream(w: &Workload, keys: u32, seed: u64) -> Vec<(Vec<u8>, Vec<u8>, Vec<SetId>)> {
    // SplitMix64, same generator the oracle harness uses.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut out = Vec::with_capacity(w.queries as usize);
    for _ in 0..w.queries {
        let start = (next() % keys as u64) as u32;
        let (lo, hi) = match w.shape {
            Shape::Exact => {
                let lo = key_bytes(start);
                let mut hi = lo.clone();
                hi.push(0);
                (lo, hi)
            }
            Shape::Range(permille) => {
                let span = (keys as u64 * permille as u64 / 1000).max(1) as u32;
                let start = start.min(keys.saturating_sub(span));
                (key_bytes(start), key_bytes(start + span))
            }
        };
        let first = (next() % 8) as u16;
        let sets: Vec<SetId> = (0..w.num_sets as u16)
            .map(|i| SetId((first + i) % 8))
            .collect();
        out.push((lo, hi, sets));
    }
    out
}

fn run_workload(u: &mut UIndexSet, w: &Workload, keys: u32) -> [Acc; 3] {
    let stream = query_stream(w, keys, 0x5CA9_F0CE_5EED_0001);
    let mut accs = [Acc::default(); 3];
    let mut reference: Vec<(Vec<(SetId, objstore::Oid)>, u64)> = Vec::new();
    for (ai, (algo, aname)) in ALGOS.iter().enumerate() {
        u.use_algorithm(*algo);
        let mut legacy = Acc::default();
        let reg0 = Acc::from_registry();
        let started = Instant::now();
        for (qi, (lo, hi, sets)) in stream.iter().enumerate() {
            let mut sorted = sets.clone();
            sorted.sort();
            let (hits, stats) = match w.shape {
                Shape::Exact => u.exact_stats(lo, &sorted).expect("query"),
                Shape::Range(_) => u.range_stats(lo, hi, &sorted).expect("query"),
            };
            legacy.add(&stats);
            if ai == 0 {
                reference.push((hits, stats.pages_read));
            } else {
                let (ref_hits, ref_pages) = &reference[qi];
                assert_eq!(
                    &hits, ref_hits,
                    "{}: algorithms disagree on query {qi}",
                    w.name
                );
                // Per-query: hierarchical reseek must leave the distinct
                // page set exactly as the flat (pre-reseek) algorithm's —
                // it only avoids *re*-fetching pages the query already
                // touched. (Forward is compared on hits only: a skip-seek
                // can legitimately descend through an interior node the
                // forward leaf-chain walk bypasses via `leaf.next`.)
                if ALGOS[ai].0 == ScanAlgorithm::ParallelFlat {
                    assert_eq!(
                        *ref_pages, stats.pages_read,
                        "{}: query {qi} pages_read changed under hierarchical \
                         reseek",
                        w.name
                    );
                }
            }
        }
        let wall_nanos = started.elapsed().as_nanos();
        // The reported numbers come from the telemetry registry; the summed
        // per-query ScanStats must agree exactly, or the two accounting
        // paths have drifted.
        let mut acc = Acc::from_registry().minus(reg0);
        assert_eq!(
            acc, legacy,
            "{} ({aname}): registry deltas diverge from summed ScanStats",
            w.name
        );
        acc.wall_nanos = wall_nanos;
        accs[ai] = acc;
    }
    u.use_algorithm(ScanAlgorithm::Parallel);
    accs
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let objects: u32 = if smoke {
        5_000
    } else {
        std::env::var("OBJECTS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(50_000)
    };
    let queries: u32 = if smoke { 20 } else { 200 };

    let cfg = UniformConfig {
        num_objects: objects,
        num_sets: 8,
        keys: KeyCount::Distinct(1000),
        seed: 42,
    };
    let postings = generate_postings(&cfg);
    let keys = key_space(&cfg);
    let mut u = UIndexSet::build(8, &postings).expect("build U-index");

    let workloads = [
        Workload {
            name: "exact_k4",
            shape: Shape::Exact,
            num_sets: 4,
            queries,
        },
        Workload {
            name: "range10_k1",
            shape: Shape::Range(100),
            num_sets: 1,
            queries: queries / 4,
        },
        Workload {
            name: "range10_k4",
            shape: Shape::Range(100),
            num_sets: 4,
            queries: queries / 4,
        },
        Workload {
            name: "range1_k2",
            shape: Shape::Range(10),
            num_sets: 2,
            queries,
        },
    ];

    println!(
        "scanperf: {objects} objects, 8 sets, {keys} distinct keys{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "workload", "algorithm", "pages", "visits", "seeks", "descents", "wall ms"
    );

    // Provenance header (documented in docs/bench-format.md): enough to
    // reproduce and attribute the numbers — generator seed, workload name,
    // object count, and a git-describable tool version.
    let provenance = telemetry::Provenance {
        seed: cfg.seed,
        workload: "uniform-scan".into(),
        objects: objects as u64,
        version: telemetry::tool_version(env!("CARGO_PKG_VERSION")),
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"provenance\": {},", provenance.to_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"objects\": {objects}, \"sets\": 8, \"distinct_keys\": {keys}, \
         \"page_size\": 1024, \"queries_per_workload\": {queries}}},"
    );
    json.push_str("  \"workloads\": {\n");

    let mut skip_heavy: Option<(u64, u64)> = None;
    for (wi, w) in workloads.iter().enumerate() {
        let accs = run_workload(&mut u, w, keys);
        let (par, flat) = (&accs[0], &accs[1]);
        // Hierarchical reseek must not change the distinct page set and
        // must never visit more nodes than flat skip-seeking.
        assert_eq!(
            par.pages_read, flat.pages_read,
            "{}: hierarchical reseek changed pages_read",
            w.name
        );
        assert!(
            par.node_visits <= flat.node_visits,
            "{}: hierarchical reseek increased node visits",
            w.name
        );
        for (ai, (_, aname)) in ALGOS.iter().enumerate() {
            println!(
                "{:<12} {:>14} {:>12} {:>12} {:>10} {:>10} {:>10.1}",
                if ai == 0 { w.name } else { "" },
                aname,
                accs[ai].pages_read,
                accs[ai].node_visits,
                accs[ai].seeks,
                accs[ai].descents,
                accs[ai].wall_nanos as f64 / 1e6,
            );
        }
        if w.name == "range10_k1" {
            skip_heavy = Some((flat.node_visits, par.node_visits));
        }
        let _ = writeln!(json, "    \"{}\": {{", w.name);
        for (ai, (_, aname)) in ALGOS.iter().enumerate() {
            let _ = write!(json, "      \"{aname}\": ");
            accs[ai].to_json(&mut json, "");
            json.push_str(if ai + 1 < ALGOS.len() { ",\n" } else { "\n" });
        }
        json.push_str(if wi + 1 < workloads.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  },\n");

    let (before, after) = skip_heavy.expect("skip-heavy workload ran");
    let reduction = 100.0 * (before.saturating_sub(after)) as f64 / before.max(1) as f64;
    let _ = writeln!(
        json,
        "  \"summary\": {{\"skip_heavy_workload\": \"range10_k1\", \
         \"node_visits_before_reseek\": {before}, \"node_visits_after_reseek\": {after}, \
         \"reduction_pct\": {reduction:.1}}}"
    );
    json.push_str("}\n");

    println!(
        "\nskip-heavy (range10_k1) node_visits: {before} flat -> {after} hierarchical \
         ({reduction:.1}% reduction)"
    );

    if smoke {
        println!("smoke run: BENCH_scan.json not written");
        return;
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_scan.json");
    std::fs::write(&path, json).expect("write BENCH_scan.json");
    println!("wrote {}", path.display());
}
