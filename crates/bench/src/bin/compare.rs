//! Qualitative §4.4 comparison: U-index vs CH-tree vs H-tree vs CG-tree on
//! the same multi-set workload (exact match and range, varying set counts),
//! plus storage totals.
//!
//! Usage: `cargo run --release -p bench --bin compare`

use baselines::{CgConfig, CgTree, ChTree, HTree, SetId, SetIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uindex::ScanAlgorithm;
use workload::queries::{pick_near, pick_range};
use workload::uniform::{generate_postings, key_bytes, KeyCount, UIndexSet, UniformConfig};

fn main() {
    let num_objects: u32 = std::env::var("OBJECTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let reps = bench::reps().min(50);
    let num_sets = 8u16;
    let cfg = UniformConfig {
        num_objects,
        num_sets,
        keys: KeyCount::Distinct(1000),
        seed: 99,
    };
    println!(
        "# Index structure comparison — {num_objects} objects, {num_sets} sets, 1000 keys, {reps} reps"
    );
    let postings = generate_postings(&cfg);

    let uindex = UIndexSet::build(num_sets, &postings).expect("build u-index");
    let ch = ChTree::build(1024, 1 << 16, &mut postings.clone()).expect("build ch");
    let h = HTree::build(1024, 1 << 16, &mut postings.clone()).expect("build h");
    let cg = CgTree::build(CgConfig::default(), &mut postings.clone()).expect("build cg");

    let mut structures: Vec<Box<dyn SetIndex>> =
        vec![Box::new(uindex), Box::new(ch), Box::new(h), Box::new(cg)];

    println!("\n## Storage (live pages)");
    for s in &structures {
        println!("{:>10}: {} pages", s.name(), s.total_pages());
    }

    for (title, kind) in [
        ("Exact match", None),
        ("Range 10% of keyspace", Some(0.10)),
        ("Range 1% of keyspace", Some(0.01)),
    ] {
        println!("\n## {title} — avg pages read");
        print!("{:>6}", "sets");
        for s in &structures {
            print!("  {:>10}", s.name());
        }
        println!();
        for k in [1u16, 2, 4, 8] {
            let mut sums = vec![0u64; structures.len()];
            let mut reference: Option<Vec<(SetId, objstore::Oid)>> = None;
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(1000 + rep as u64 * 7 + k as u64);
                let sets = pick_near(&mut rng, num_sets, k);
                let (lo, hi) = match kind {
                    None => {
                        let key = key_bytes(rng.gen_range(0..1000));
                        let mut hi = key.clone();
                        hi.push(0);
                        (key, hi)
                    }
                    Some(f) => pick_range(&mut rng, 1000, f),
                };
                for (i, s) in structures.iter_mut().enumerate() {
                    let (hits, cost) = match kind {
                        None => s.exact(&lo, &sets).expect("query"),
                        Some(_) => s.range(&lo, &hi, &sets).expect("query"),
                    };
                    sums[i] += cost.pages;
                    if rep == 0 {
                        // All four structures must agree.
                        let mut hits = hits;
                        hits.sort();
                        match &reference {
                            None => reference = Some(hits),
                            Some(r) => assert_eq!(&hits, r, "{} disagrees", s.name()),
                        }
                    }
                }
                reference = None;
            }
            print!("{k:>6}");
            for sum in &sums {
                print!("  {:>10.1}", *sum as f64 / reps as f64);
            }
            println!();
        }
    }
    // U-index scan-algorithm breakdown: the same skip-heavy range workload
    // under hierarchical reseek (the default), the flat full-descent-per-skip
    // baseline it replaced, and the forward scan. Pages are identical between
    // the two parallel algorithms by construction; the win shows up in node
    // visits and in how many skip-seeks escalate to a tree descent.
    println!("\n## U-index scan algorithm — range 10% of keyspace, avg per query");
    println!(
        "{:>6}  {:>12}  {:>10}  {:>10}  {:>10}  {:>14}",
        "sets", "algorithm", "pages", "visits", "descents", "descents saved"
    );
    let algos: [(ScanAlgorithm, &str); 3] = [
        (ScanAlgorithm::ParallelFlat, "flat"),
        (ScanAlgorithm::Parallel, "hierarchical"),
        (ScanAlgorithm::Forward, "forward"),
    ];
    let mut u = UIndexSet::build(num_sets, &postings).expect("build u-index");
    // The telemetry registry accumulates across every U-index query in the
    // process; sampled around the breakdown it must reproduce the summed
    // per-query ScanStats exactly.
    let reg_pages0 = telemetry::counter_value("uindex.scan.pages");
    let reg_visits0 = telemetry::counter_value("uindex.scan.node_visits");
    let reg_descents0 = telemetry::counter_value("uindex.scan.descents");
    let mut breakdown_totals = [0u64; 3]; // pages, visits, descents
    for k in [1u16, 2, 4, 8] {
        let mut sums = [[0u64; 3]; 3]; // [algo][pages, visits, descents]
        for (ai, (algo, _)) in algos.iter().enumerate() {
            u.use_algorithm(*algo);
            for rep in 0..reps {
                // Same seeds as the page-read tables above: identical queries.
                let mut rng = StdRng::seed_from_u64(1000 + rep as u64 * 7 + k as u64);
                let sets = pick_near(&mut rng, num_sets, k);
                let (lo, hi) = pick_range(&mut rng, 1000, 0.10);
                let (_, stats) = u.range_stats(&lo, &hi, &sets).expect("query");
                sums[ai][0] += stats.pages_read;
                sums[ai][1] += stats.node_visits;
                sums[ai][2] += stats.descents;
                breakdown_totals[0] += stats.pages_read;
                breakdown_totals[1] += stats.node_visits;
                breakdown_totals[2] += stats.descents;
            }
        }
        u.use_algorithm(ScanAlgorithm::Parallel);
        for (ai, (_, name)) in algos.iter().enumerate() {
            let saved = if *name == "hierarchical" {
                format!("{:.1}", (sums[0][2] - sums[ai][2]) as f64 / reps as f64)
            } else {
                "-".to_string()
            };
            println!(
                "{:>6}  {:>12}  {:>10.1}  {:>10.1}  {:>10.1}  {:>14}",
                if ai == 0 {
                    k.to_string()
                } else {
                    String::new()
                },
                name,
                sums[ai][0] as f64 / reps as f64,
                sums[ai][1] as f64 / reps as f64,
                sums[ai][2] as f64 / reps as f64,
                saved,
            );
        }
    }

    assert_eq!(
        telemetry::counter_value("uindex.scan.pages") - reg_pages0,
        breakdown_totals[0],
        "registry pages delta diverges from summed ScanStats"
    );
    assert_eq!(
        telemetry::counter_value("uindex.scan.node_visits") - reg_visits0,
        breakdown_totals[1],
        "registry node_visits delta diverges from summed ScanStats"
    );
    assert_eq!(
        telemetry::counter_value("uindex.scan.descents") - reg_descents0,
        breakdown_totals[2],
        "registry descents delta diverges from summed ScanStats"
    );

    // Whole-process U-index telemetry (both table sections feed it).
    let queries = telemetry::counter_value("uindex.query.count");
    let pages_h = telemetry::histogram("uindex.query.pages");
    println!(
        "\n## U-index telemetry registry — {queries} queries recorded, \
         {:.1} pages/query avg (histogram total {} over {} observations)",
        pages_h.sum() as f64 / pages_h.count().max(1) as f64,
        pages_h.sum(),
        pages_h.count()
    );

    println!(
        "\nExpected shapes (paper §4.4/§5): CH-tree best at exact match but pays the whole \
         key range regardless of sets; H-tree scales with queried sets only; CG-tree \
         compromises; the U-index is flat for exact match and wins ranges once most \
         sets are queried."
    );
}
