//! A deterministic TCP fault proxy for the chaos harness: sits between
//! the load generator's clients and a UQL server, forwarding bytes while
//! injecting faults — delays, stalls, single-bit corruption, mid-frame
//! truncation, abrupt drops — on a seeded schedule.
//!
//! Determinism is the whole design: every fault fires at an **absolute
//! byte offset** within one direction of one connection, with both the
//! offsets and the actions drawn from a SplitMix64 stream keyed on
//! `(seed, connection, direction)`. Offsets are independent of TCP
//! chunking, so the same seed against the same byte streams produces the
//! same [`FaultEvent`] trace — pinned by the `chaos_proxy` test.
//!
//! The proxy is also the stable endpoint for the crash-restart drill:
//! clients keep their `proxy:port` address while
//! [`ChaosProxy::set_upstream`] repoints new connections at a restarted
//! server.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One direction of a proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dir {
    /// Client → server bytes.
    Up,
    /// Server → client bytes.
    Down,
}

/// A fault the proxy can inject at a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Pause this direction briefly before forwarding further bytes.
    Delay { ms: u64 },
    /// A longer pause — enough to trip client read patience.
    Stall { ms: u64 },
    /// Flip one bit of the byte at the fault offset (caught by the
    /// protocol's CRC, surfacing as `BadCrc` / a server `Proto` error).
    CorruptBit { bit: u8 },
    /// Forward bytes up to the offset, then close both ways mid-frame.
    Truncate,
    /// Close both ways at the offset without forwarding the byte.
    Drop,
}

/// One injected fault, for the deterministic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Connection id in accept order (0-based).
    pub conn: u64,
    /// Which direction of that connection.
    pub dir: Dir,
    /// Absolute byte offset within the direction's stream.
    pub offset: u64,
    /// What was done there.
    pub action: ChaosAction,
}

/// Fault schedule parameters. All randomness derives from `seed`.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for every per-(conn, dir) fault stream.
    pub seed: u64,
    /// Mean bytes between faults per direction; 0 disables injection.
    pub mean_gap_bytes: u64,
    /// Relative weights of each action (all zero also disables).
    pub delay_weight: u32,
    pub stall_weight: u32,
    pub corrupt_weight: u32,
    pub truncate_weight: u32,
    pub drop_weight: u32,
    /// Sleep for `Delay` faults.
    pub delay_ms: u64,
    /// Sleep for `Stall` faults.
    pub stall_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            mean_gap_bytes: 4096,
            delay_weight: 4,
            stall_weight: 1,
            corrupt_weight: 2,
            truncate_weight: 1,
            drop_weight: 1,
            delay_ms: 2,
            stall_ms: 20,
        }
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// SplitMix64 stream of fault points for one (conn, dir).
struct FaultStream {
    state: u64,
    cfg: ChaosConfig,
    /// Absolute offset of the next fault.
    next_at: u64,
}

impl FaultStream {
    fn new(cfg: ChaosConfig, conn: u64, dir: Dir) -> FaultStream {
        let dir_salt = match dir {
            Dir::Up => 0x9e37_79b9_7f4a_7c15u64,
            Dir::Down => 0x2545_f491_4f6c_dd1du64,
        };
        let mut s = FaultStream {
            state: mix(cfg.seed ^ conn.wrapping_mul(0xa076_1d64_78bd_642f) ^ dir_salt),
            cfg,
            next_at: 0,
        };
        s.next_at = s.gap();
        s
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    fn gap(&mut self) -> u64 {
        if self.cfg.mean_gap_bytes == 0 {
            return u64::MAX;
        }
        1 + self.next_u64() % (2 * self.cfg.mean_gap_bytes)
    }

    fn pick_action(&mut self) -> Option<ChaosAction> {
        let cfg = self.cfg;
        let total = u64::from(cfg.delay_weight)
            + u64::from(cfg.stall_weight)
            + u64::from(cfg.corrupt_weight)
            + u64::from(cfg.truncate_weight)
            + u64::from(cfg.drop_weight);
        if total == 0 {
            return None;
        }
        let mut roll = self.next_u64() % total;
        let bit_roll = (self.next_u64() % 8) as u8;
        for (weight, action) in [
            (cfg.delay_weight, ChaosAction::Delay { ms: cfg.delay_ms }),
            (cfg.stall_weight, ChaosAction::Stall { ms: cfg.stall_ms }),
            (
                cfg.corrupt_weight,
                ChaosAction::CorruptBit { bit: bit_roll },
            ),
            (cfg.truncate_weight, ChaosAction::Truncate),
            (cfg.drop_weight, ChaosAction::Drop),
        ] {
            if roll < u64::from(weight) {
                return Some(action);
            }
            roll -= u64::from(weight);
        }
        None
    }

    /// The next fault landing in `[offset, offset + len)`, if any,
    /// advancing the schedule past it.
    fn next_in(&mut self, offset: u64, len: u64) -> Option<(u64, ChaosAction)> {
        if self.next_at >= offset + len {
            return None;
        }
        let at = self.next_at;
        let gap = self.gap();
        self.next_at = at.saturating_add(gap);
        self.pick_action().map(|a| (at, a))
    }
}

struct ProxyShared {
    upstream: Mutex<SocketAddr>,
    stop: AtomicBool,
    trace: Mutex<Vec<FaultEvent>>,
    conns: AtomicU64,
    cfg: ChaosConfig,
}

/// The running proxy. [`ChaosProxy::shutdown`] stops the acceptor and
/// joins every pump thread.
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    local: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Bind an ephemeral local port and start proxying to `upstream`.
    pub fn start(upstream: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream: Mutex::new(upstream),
            stop: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
            conns: AtomicU64::new(0),
            cfg,
        });
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let pumps = Arc::clone(&pumps);
            std::thread::Builder::new()
                .name("chaos-acceptor".into())
                .spawn(move || accept_loop(listener, shared, pumps))?
        };
        Ok(ChaosProxy {
            shared,
            local,
            acceptor: Some(acceptor),
            pumps,
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Repoint **new** connections at a different upstream (the crash-
    /// restart drill: the proxy endpoint is stable, the server isn't).
    pub fn set_upstream(&self, addr: SocketAddr) {
        *self.shared.upstream.lock().unwrap() = addr;
    }

    /// The fault trace so far, sorted by (conn, dir, offset) so two runs
    /// are comparable whatever the thread interleaving was.
    pub fn trace(&self) -> Vec<FaultEvent> {
        let mut t = self.shared.trace.lock().unwrap().clone();
        t.sort_by_key(|e| (e.conn, e.dir, e.offset));
        t
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.shared.conns.load(Ordering::Relaxed)
    }

    /// Stop accepting, sever every proxied connection, join all threads,
    /// and return the final trace.
    pub fn shutdown(mut self) -> Vec<FaultEvent> {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for pump in std::mem::take(&mut *self.pumps.lock().unwrap()) {
            let _ = pump.join();
        }
        self.trace()
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<ProxyShared>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((down, _)) => {
                let conn = shared.conns.fetch_add(1, Ordering::Relaxed);
                let upstream = *shared.upstream.lock().unwrap();
                let up = match TcpStream::connect_timeout(&upstream, Duration::from_millis(500)) {
                    Ok(s) => s,
                    // Server down (crash drill): refuse by closing; the
                    // client sees a clean Closed and retries.
                    Err(_) => continue,
                };
                let _ = down.set_nodelay(true);
                let _ = up.set_nodelay(true);
                for (dir, from, to) in [(Dir::Up, &down, &up), (Dir::Down, &up, &down)] {
                    let from = from.try_clone().expect("clone stream");
                    let to = to.try_clone().expect("clone stream");
                    let shared = Arc::clone(&shared);
                    let stream = FaultStream::new(shared.cfg, conn, dir);
                    let handle = std::thread::Builder::new()
                        .name(format!("chaos-{conn}-{dir:?}"))
                        .spawn(move || pump(from, to, stream, shared, conn, dir))
                        .expect("spawn pump");
                    pumps.lock().unwrap().push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Forward one direction, applying scheduled faults at their exact byte
/// offsets (independent of how TCP chunked the stream).
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    mut faults: FaultStream,
    shared: Arc<ProxyShared>,
    conn: u64,
    dir: Dir,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let mut offset = 0u64;
    let mut buf = [0u8; 4096];
    let record = |offset: u64, action: ChaosAction| {
        shared.trace.lock().unwrap().push(FaultEvent {
            conn,
            dir,
            offset,
            action,
        });
    };
    let sever = |from: &TcpStream, to: &TcpStream| {
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    };
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let chunk = &mut buf[..n];
        let mut severed = false;
        while let Some((at, action)) = faults.next_in(offset, n as u64) {
            record(at, action);
            match action {
                ChaosAction::Delay { ms } | ChaosAction::Stall { ms } => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                ChaosAction::CorruptBit { bit } => {
                    chunk[(at - offset) as usize] ^= 1 << (bit & 7);
                }
                ChaosAction::Truncate => {
                    let keep = (at - offset) as usize;
                    let _ = to.write_all(&chunk[..keep]);
                    severed = true;
                    break;
                }
                ChaosAction::Drop => {
                    severed = true;
                    break;
                }
            }
        }
        if severed {
            sever(&from, &to);
            return;
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        offset += n as u64;
    }
    sever(&from, &to);
}
