//! Shared harness for the experiment binaries (`table1`, `fig5`-`fig8`,
//! `compare`) and the Criterion micro-benchmarks.
//!
//! The experiment 2 protocol follows §5.1 of the paper: build the database
//! once per configuration, then repeat each query point `reps` times with
//! fresh random inputs (queried sets near / non-near for the U-index,
//! random for the CG-tree, random key or range) and average the distinct
//! pages read.

pub mod chaos;

use baselines::{CgConfig, CgTree, SetId, SetIndex};
use objstore::Oid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workload::queries::{pick_distant, pick_near, pick_range};
use workload::uniform::{generate_postings, key_space, KeyCount, UIndexSet, UniformConfig};

/// Repetitions per measured point; the paper uses 100. Override with the
/// `REPS` environment variable.
pub fn reps() -> u32 {
    std::env::var("REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// One built experiment configuration.
pub struct Fixture {
    /// Generation parameters.
    pub cfg: UniformConfig,
    /// The raw postings (for correctness cross-checks).
    pub postings: Vec<(Vec<u8>, SetId, Oid)>,
    /// The U-index under test.
    pub uindex: UIndexSet,
    /// The CG-tree baseline.
    pub cg: CgTree,
}

impl Fixture {
    /// Generate postings and build both structures.
    pub fn build(cfg: UniformConfig) -> Fixture {
        let postings = generate_postings(&cfg);
        let uindex = UIndexSet::build(cfg.num_sets, &postings).expect("u-index build");
        let mut sorted = postings.clone();
        let cg = CgTree::build(CgConfig::default(), &mut sorted).expect("cg build");
        Fixture {
            cfg,
            postings,
            uindex,
            cg,
        }
    }

    /// Distinct keys in this configuration.
    pub fn key_space(&self) -> u32 {
        key_space(&self.cfg)
    }
}

/// What a measured point runs.
#[derive(Debug, Clone, Copy)]
pub enum QueryKind {
    /// Exact-match on one random key (Figure 5).
    Exact,
    /// Range over this fraction of the keyspace (Figures 6-8).
    Range(f64),
}

/// Averaged page reads for one (query kind, #sets) point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Queried set count.
    pub sets: u16,
    /// U-index, near (adjacent) sets.
    pub uindex_near: f64,
    /// U-index, non-near (dispersed) sets.
    pub uindex_far: f64,
    /// CG-tree (random sets; adjacency is irrelevant to it, §5.1).
    pub cg: f64,
}

fn random_sets(rng: &mut StdRng, num_sets: u16, k: u16) -> Vec<SetId> {
    // Random distinct sets (sorted), the paper's protocol for the CG-tree.
    let mut all: Vec<u16> = (0..num_sets).collect();
    for i in 0..k as usize {
        let j = rng.gen_range(i..all.len());
        all.swap(i, j);
    }
    let mut picked: Vec<SetId> = all[..k as usize].iter().map(|&s| SetId(s)).collect();
    picked.sort();
    picked
}

/// Measure one point, averaging `reps` random queries. The first repetition
/// also cross-checks that the U-index and CG-tree return identical results.
pub fn measure(fixture: &mut Fixture, kind: QueryKind, k: u16, reps: u32, seed: u64) -> Point {
    let mut rng = StdRng::seed_from_u64(seed);
    let keyspace = fixture.key_space();
    let (mut near_sum, mut far_sum, mut cg_sum) = (0u64, 0u64, 0u64);
    for rep in 0..reps {
        let (lo, hi) = match kind {
            QueryKind::Exact => {
                let key = workload::uniform::key_bytes(rng.gen_range(0..keyspace));
                let mut hi = key.clone();
                hi.push(0);
                (key, hi)
            }
            QueryKind::Range(f) => pick_range(&mut rng, keyspace, f),
        };
        let near = pick_near(&mut rng, fixture.cfg.num_sets, k);
        let far = pick_distant(&mut rng, fixture.cfg.num_sets, k);
        let cg_sets = random_sets(&mut rng, fixture.cfg.num_sets, k);

        let (near_hits, near_cost) = run(&mut fixture.uindex, &lo, &hi, &near, kind);
        let (_, far_cost) = run(&mut fixture.uindex, &lo, &hi, &far, kind);
        let (cg_hits, cg_cost) = run(&mut fixture.cg, &lo, &hi, &cg_sets, kind);
        near_sum += near_cost;
        far_sum += far_cost;
        cg_sum += cg_cost;

        if rep == 0 {
            // Cross-check both structures against brute force on the same
            // set selection.
            let (u_hits, _) = run(&mut fixture.uindex, &lo, &hi, &cg_sets, kind);
            assert_eq!(
                u_hits, cg_hits,
                "U-index and CG-tree disagree on {kind:?} k={k}"
            );
            let brute = brute_force(&fixture.postings, &lo, &hi, &near);
            assert_eq!(near_hits, brute, "U-index vs brute force");
        }
    }
    Point {
        sets: k,
        uindex_near: near_sum as f64 / reps as f64,
        uindex_far: far_sum as f64 / reps as f64,
        cg: cg_sum as f64 / reps as f64,
    }
}

fn run<I: SetIndex>(
    index: &mut I,
    lo: &[u8],
    hi: &[u8],
    sets: &[SetId],
    kind: QueryKind,
) -> (Vec<(SetId, Oid)>, u64) {
    match kind {
        QueryKind::Exact => {
            let (hits, cost) = index.exact(lo, sets).expect("query");
            (hits, cost.pages)
        }
        QueryKind::Range(_) => {
            let (hits, cost) = index.range(lo, hi, sets).expect("query");
            (hits, cost.pages)
        }
    }
}

/// Reference results straight from the posting list.
pub fn brute_force(
    postings: &[(Vec<u8>, SetId, Oid)],
    lo: &[u8],
    hi: &[u8],
    sets: &[SetId],
) -> Vec<(SetId, Oid)> {
    let mut out: Vec<(SetId, Oid)> = postings
        .iter()
        .filter(|(key, s, _)| {
            key.as_slice() >= lo && key.as_slice() < hi && sets.binary_search(s).is_ok()
        })
        .map(|(_, s, o)| (*s, *o))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The set-count series a panel sweeps (paper x-axes: 1..40 or 1..8).
pub fn set_counts(num_sets: u16) -> Vec<u16> {
    if num_sets == 40 {
        vec![1, 10, 20, 30, 40]
    } else {
        vec![1, 2, 4, 6, 8]
    }
}

/// Key-cardinality panels of the figures.
pub fn key_panels() -> Vec<(&'static str, KeyCount)> {
    vec![
        ("unique keys", KeyCount::Unique),
        ("100 different keys", KeyCount::Distinct(100)),
        ("1000 different keys", KeyCount::Distinct(1000)),
    ]
}

/// Print one panel as an aligned table.
pub fn print_panel(title: &str, points: &[Point]) {
    println!("\n### {title}");
    println!(
        "{:>5}  {:>14}  {:>18}  {:>9}",
        "sets", "U-index (near)", "U-index (non-near)", "CG-tree"
    );
    for p in points {
        println!(
            "{:>5}  {:>14.1}  {:>18.1}  {:>9.1}",
            p.sets, p.uindex_near, p.uindex_far, p.cg
        );
    }
}

/// Run one panel and return its points.
pub fn run_panel(
    kind: QueryKind,
    num_objects: u32,
    num_sets: u16,
    keys: KeyCount,
    seed: u64,
) -> Vec<Point> {
    let reps = reps();
    let cfg = UniformConfig {
        num_objects,
        num_sets,
        keys,
        seed,
    };
    let mut fixture = Fixture::build(cfg);
    set_counts(num_sets)
        .into_iter()
        .enumerate()
        .map(|(i, k)| measure(&mut fixture, kind, k, reps, seed ^ (i as u64 + 1)))
        .collect()
}

/// Run a full figure: every key panel x both hierarchy sizes.
pub fn run_figure(name: &str, kind: QueryKind, num_objects: u32, seed: u64) {
    println!(
        "# {name}  ({num_objects} objects, {} repetitions per point)",
        reps()
    );
    for num_sets in [40u16, 8] {
        for (panel_name, keys) in key_panels() {
            let points = run_panel(kind, num_objects, num_sets, keys, seed);
            print_panel(&format!("{num_sets} sets - {panel_name}"), &points);
        }
    }
}

/// Objects per experiment database. The paper uses 150,000; override with
/// the `OBJECTS` environment variable for quick runs.
pub fn num_objects() -> u32 {
    std::env::var("OBJECTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000)
}
