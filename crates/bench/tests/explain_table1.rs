//! Acceptance gate (ISSUE 4): EXPLAIN ANALYZE over every Table-1 query
//! reports page / node / reseek counts exactly matching the legacy
//! `ScanStats` and buffer-pool `PoolStats` for the same run.
//!
//! The query set is [`workload::vehicle::table1_queries`] — the same list
//! the `table1` bench binary prints — on a smaller database (the counters
//! under test are size-independent identities, not absolute values).

use workload::vehicle::{generate, table1_queries};

#[test]
fn explain_analyze_matches_legacy_counters_on_table1() {
    let w = generate(2028, 2_000, 10).expect("generate");
    let queries = table1_queries(&w);
    assert_eq!(queries.len(), 20, "the paper's full Table 1");

    for tq in &queries {
        let mut variants = vec![("parallel", tq.query.clone())];
        if tq.forward_compare {
            variants.push(("forward", tq.query.clone().forward_scan()));
        }
        for (vname, q) in variants {
            let ctx = format!("query {} ({vname})", tq.id);
            let pool0 = w.db.index().tree().pool().stats();
            let report = w.db.explain_query(&q).expect("explain");
            let pool1 = w.db.index().tree().pool().stats();
            let t = &report.trace;
            let s = &report.stats;

            // The trace's scan counters are the legacy ScanStats, field by
            // field.
            assert_eq!(t.pages_read, s.pages_read, "{ctx}: pages_read");
            assert_eq!(t.node_visits, s.node_visits, "{ctx}: node_visits");
            assert_eq!(
                t.entries_examined, s.entries_examined,
                "{ctx}: entries_examined"
            );
            assert_eq!(t.matches, s.matches, "{ctx}: matches");
            assert_eq!(t.skips, s.seeks, "{ctx}: skips vs seeks");
            assert_eq!(t.descents, s.descents, "{ctx}: descents");
            assert_eq!(
                t.reseek_depth_total, s.reseek_depth_total,
                "{ctx}: reseek_depth_total"
            );

            // Every skip resolves through exactly one reseek tier.
            assert_eq!(
                t.reseeks_leaf + t.reseeks_lca + t.reseeks_full,
                s.seeks,
                "{ctx}: reseek tiers decompose the skip count"
            );
            assert!(
                t.partial_keys_expanded >= s.seeks,
                "{ctx}: every skip expands a partial key"
            );

            // The trace's pool split is the legacy PoolStats delta for the
            // same run: every fetch the query issued is either a hit or a
            // physical read, nothing more, nothing less.
            assert_eq!(
                t.pool_hits + t.pool_misses,
                pool1.logical_fetches - pool0.logical_fetches,
                "{ctx}: pool hit/miss split covers all logical fetches"
            );
            assert_eq!(
                t.pool_misses,
                pool1.physical_reads - pool0.physical_reads,
                "{ctx}: pool misses are the physical reads"
            );

            // Re-running through the legacy stats path reproduces the
            // reported counters exactly (the counters are logical, so pool
            // warmth cannot shift them).
            let (hits, stats) = w.db.query_with_stats(&q).expect("re-run");
            assert_eq!(hits.len(), report.hits, "{ctx}: hits");
            assert_eq!(stats, *s, "{ctx}: ScanStats reproduce");

            // The span tree is present with the documented phase hierarchy.
            let span = t.span.as_ref().unwrap_or_else(|| panic!("{ctx}: span"));
            assert_eq!(span.name, "query", "{ctx}");
            assert!(span.find("plan").is_some(), "{ctx}: plan phase");
            assert!(span.find("scan").is_some(), "{ctx}: scan phase");
        }
    }
}
