//! The chaos proxy's determinism contract: the same seed and schedule
//! against the same byte streams produce a byte-identical fault trace —
//! and when no severing faults are configured, the proxied bytes
//! themselves are identical (modulo deliberate bit flips, which are also
//! deterministic). Exchanges are half-duplex so the two directions never
//! race each other through a severed connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use bench::chaos::{ChaosConfig, ChaosProxy, FaultEvent};

/// A deterministic upstream: for each connection, read exactly
/// `request` bytes, write back `reply_len` bytes of a fixed pattern,
/// then close. Returns what it received per connection.
fn fixed_server(
    conns: usize,
    request: usize,
    reply_len: usize,
) -> (SocketAddr, std::thread::JoinHandle<Vec<Vec<u8>>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut seen = Vec::new();
        for _ in 0..conns {
            let (mut s, _) = listener.accept().unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut got = vec![0u8; request];
            let mut filled = 0;
            while filled < request {
                match s.read(&mut got[filled..]) {
                    Ok(0) => break, // severed by the proxy
                    Ok(n) => filled += n,
                    Err(_) => break,
                }
            }
            got.truncate(filled);
            seen.push(got);
            let reply: Vec<u8> = (0..reply_len).map(|i| (i % 251) as u8).collect();
            let _ = s.write_all(&reply);
        }
        seen
    });
    (addr, handle)
}

/// Drive `conns` sequential request/reply exchanges through a proxy with
/// `cfg`, returning (fault trace, per-connection received replies,
/// per-connection bytes the server saw).
fn run_once(cfg: ChaosConfig, conns: usize) -> (Vec<FaultEvent>, Vec<Vec<u8>>, Vec<Vec<u8>>) {
    const REQUEST: usize = 9000;
    const REPLY: usize = 17000;
    let (addr, server) = fixed_server(conns, REQUEST, REPLY);
    let proxy = ChaosProxy::start(addr, cfg).unwrap();

    let mut replies = Vec::new();
    for c in 0..conns {
        let mut s = TcpStream::connect(proxy.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let request: Vec<u8> = (0..REQUEST).map(|i| ((i + c) % 241) as u8).collect();
        let _ = s.write_all(&request);
        let mut reply = Vec::new();
        let _ = s.read_to_end(&mut reply);
        replies.push(reply);
    }

    let seen = server.join().unwrap();
    let trace = proxy.shutdown();
    (trace, replies, seen)
}

#[test]
fn same_seed_same_schedule_identical_trace_and_bytes() {
    // Schedule with every fault class enabled, dense enough that a run
    // of three 26 KB exchanges is guaranteed several faults.
    let cfg = ChaosConfig {
        seed: 0xDE7E_1257,
        mean_gap_bytes: 2000,
        delay_ms: 1,
        stall_ms: 2,
        ..ChaosConfig::default()
    };
    let (t1, r1, s1) = run_once(cfg, 3);
    let (t2, r2, s2) = run_once(cfg, 3);
    assert!(!t1.is_empty(), "the schedule must have fired");
    assert_eq!(
        t1, t2,
        "same seed+schedule must give a byte-identical trace"
    );
    assert_eq!(r1, r2, "client-observed bytes must be identical");
    assert_eq!(s1, s2, "server-observed bytes must be identical");
}

#[test]
fn different_seeds_diverge() {
    let base = ChaosConfig {
        mean_gap_bytes: 2000,
        delay_ms: 1,
        stall_ms: 2,
        ..ChaosConfig::default()
    };
    let (t1, _, _) = run_once(ChaosConfig { seed: 1, ..base }, 2);
    let (t2, _, _) = run_once(ChaosConfig { seed: 2, ..base }, 2);
    assert_ne!(t1, t2, "different seeds must give different fault traces");
}

#[test]
fn non_severing_schedule_preserves_payload_bytes() {
    // Only delays: the proxy must be a pure (slow) pipe.
    let cfg = ChaosConfig {
        seed: 7,
        mean_gap_bytes: 1500,
        delay_weight: 1,
        stall_weight: 0,
        corrupt_weight: 0,
        truncate_weight: 0,
        drop_weight: 0,
        delay_ms: 1,
        stall_ms: 1,
    };
    let (trace, replies, seen) = run_once(cfg, 2);
    assert!(!trace.is_empty());
    for (c, req) in seen.iter().enumerate() {
        assert_eq!(req.len(), 9000, "conn {c}: request must arrive whole");
        assert!(req
            .iter()
            .enumerate()
            .all(|(i, &b)| b == ((i + c) % 241) as u8));
    }
    for reply in &replies {
        assert_eq!(reply.len(), 17000, "reply must arrive whole");
        assert!(reply.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
    }
}

#[test]
fn zero_gap_disables_injection() {
    let cfg = ChaosConfig {
        mean_gap_bytes: 0,
        ..ChaosConfig::default()
    };
    let (trace, replies, _) = run_once(cfg, 1);
    assert!(trace.is_empty(), "mean_gap_bytes = 0 must disable faults");
    assert_eq!(replies[0].len(), 17000);
}
