//! Update-cost benchmarks (§3.5/§4.2): single inserts/deletes per
//! structure, maintained path updates (the "president switches companies"
//! case), and batched vs unbatched B-tree updates.

use baselines::{CgConfig, CgTree, ChTree, SetId, SetIndex};
use btree::{BTree, BTreeConfig};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use objstore::{Oid, Value};
use pagestore::{BufferPool, MemStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workload::uniform::{generate_postings, key_bytes, KeyCount, UIndexSet, UniformConfig};
use workload::vehicle::generate;

fn bench_set_index_updates(c: &mut Criterion) {
    let cfg = UniformConfig {
        num_objects: 20_000,
        num_sets: 8,
        keys: KeyCount::Distinct(1000),
        seed: 5,
    };
    let postings = generate_postings(&cfg);
    let mut structures: Vec<Box<dyn SetIndex>> = vec![
        Box::new(UIndexSet::build(8, &postings).unwrap()),
        Box::new(ChTree::build(1024, 1 << 16, &mut postings.clone()).unwrap()),
        Box::new(CgTree::build(CgConfig::default(), &mut postings.clone()).unwrap()),
    ];
    let mut group = c.benchmark_group("updates");
    for s in structures.iter_mut() {
        let name = s.name();
        let mut rng = StdRng::seed_from_u64(11);
        let mut next_oid = 1_000_000u32;
        group.bench_function(BenchmarkId::new("insert_delete", name), |b| {
            b.iter(|| {
                next_oid += 1;
                let key = key_bytes(rng.gen_range(0..1000));
                let set = SetId(rng.gen_range(0..8));
                s.insert(&key, set, Oid(next_oid)).unwrap();
                s.remove(&key, set, Oid(next_oid)).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_maintained_updates(c: &mut Criterion) {
    let mut w = generate(3, 3000, 10).expect("generate");
    let mut rng = StdRng::seed_from_u64(17);
    let mut group = c.benchmark_group("maintained");
    let vehicles = w.vehicles.clone();
    let employees = w.employees.clone();
    let companies = w.companies.clone();
    group.bench_function("repaint_vehicle", |b| {
        b.iter(|| {
            let v = vehicles[rng.gen_range(0..vehicles.len())];
            let color = workload::vehicle::COLORS[rng.gen_range(0..10)];
            w.db.set_attr(v, "Color", Value::Str(color.into())).unwrap()
        })
    });
    group.bench_function("president_switches_company", |b| {
        b.iter(|| {
            let company = companies[rng.gen_range(0..companies.len())];
            let pres = employees[rng.gen_range(0..employees.len())];
            w.db.set_attr(company, "President", Value::Ref(pres))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..20_000u32)
        .map(|i| (format!("key-{i:08}").into_bytes(), Vec::new()))
        .collect();
    group.bench_function("sorted_batch_insert", |b| {
        b.iter_batched(
            || {
                let pool = BufferPool::new(MemStore::new(1024), 1 << 16);
                BTree::create(pool, BTreeConfig::default()).unwrap()
            },
            |mut tree| tree.insert_batch(items.clone()).unwrap(),
            BatchSize::LargeInput,
        )
    });
    let mut shuffled = items.clone();
    let mut rng = StdRng::seed_from_u64(23);
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.gen_range(0..=i));
    }
    group.bench_function("random_single_inserts", |b| {
        b.iter_batched(
            || {
                let pool = BufferPool::new(MemStore::new(1024), 1 << 16);
                BTree::create(pool, BTreeConfig::default()).unwrap()
            },
            |mut tree| {
                for (k, v) in &shuffled {
                    tree.insert(k, v).unwrap();
                }
                tree.len()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_set_index_updates,
    bench_maintained_updates,
    bench_batched
);
criterion_main!(benches);
