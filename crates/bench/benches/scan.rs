//! Ablation A1: the paper's parallel retrieval algorithm vs plain forward
//! scanning (wall-clock this time; the page counts are in `table1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use objstore::Value;
use uindex::{ClassSel, Query, ValuePred};
use workload::vehicle::generate;

fn bench_scan(c: &mut Criterion) {
    let w = generate(7, 6000, 10).expect("generate");
    let classes = w.classes;
    let mut group = c.benchmark_group("scan");
    let queries = [
        (
            "exact/subtree",
            Query::on(w.color_index)
                .value(ValuePred::eq(Value::Str("Red".into())))
                .class_at(0, ClassSel::SubTree(classes.bus)),
        ),
        (
            "range/dispersed-classes",
            Query::on(w.color_index)
                .value(ValuePred::In(vec![
                    Value::Str("Red".into()),
                    Value::Str("Blue".into()),
                    Value::Str("Green".into()),
                ]))
                .class_at(
                    0,
                    ClassSel::AnyOf(vec![
                        ClassSel::SubTree(classes.compact),
                        ClassSel::SubTree(classes.service_auto),
                    ]),
                ),
        ),
        (
            "path/combined",
            Query::on(w.age_index)
                .value(ValuePred::at_least(Value::Int(51)))
                .class_at(1, ClassSel::SubTree(classes.auto_company))
                .class_at(2, ClassSel::SubTree(classes.automobile)),
        ),
    ];
    for (name, q) in queries {
        group.bench_function(BenchmarkId::new("parallel", name), |b| {
            b.iter(|| w.db.query(&q).unwrap().len())
        });
        let fq = q.clone().forward_scan();
        group.bench_function(BenchmarkId::new("forward", name), |b| {
            b.iter(|| w.db.query(&fq).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
