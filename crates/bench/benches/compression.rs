//! Ablation A2: front compression on vs off (§4.2 storage-cost claim).
//! Measures build and scan times; the node-count effect is printed once.

use btree::{BTree, BTreeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pagestore::{BufferPool, MemStore};

fn items(n: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
    // U-index-like keys: long shared prefixes (index id + value + code).
    (0..n)
        .map(|i| {
            (
                format!("idx0/color={:04}/class=C{:02}/oid={:08}", i % 50, i % 12, i).into_bytes(),
                Vec::new(),
            )
        })
        .collect()
}

fn build(compress: bool, items: &[(Vec<u8>, Vec<u8>)]) -> BTree<MemStore> {
    let cfg = if compress {
        BTreeConfig::default()
    } else {
        BTreeConfig::default().without_compression()
    };
    let pool = BufferPool::new(MemStore::new(1024), 1 << 16);
    let mut sorted = items.to_vec();
    sorted.sort();
    BTree::bulk_load(pool, cfg, sorted).expect("bulk")
}

fn bench_compression(c: &mut Criterion) {
    let data = items(50_000);
    // Report the storage effect once.
    for compress in [true, false] {
        let t = build(compress, &data);
        let stats = t.verify().expect("verify");
        eprintln!(
            "front_compression={compress}: {} nodes ({} leaves), height {}",
            stats.total_nodes(),
            stats.leaf_nodes,
            stats.height
        );
    }
    let mut group = c.benchmark_group("compression");
    for compress in [true, false] {
        group.bench_function(BenchmarkId::new("bulk_build", compress), |b| {
            b.iter(|| build(compress, &data).len())
        });
        let tree = build(compress, &data);
        group.bench_function(BenchmarkId::new("point_lookup", compress), |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(7919);
                tree.get(&data[(i % 50_000) as usize].0).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("range_scan", compress), |b| {
            b.iter(|| {
                tree.range(b"idx0/color=0010", b"idx0/color=0020")
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
