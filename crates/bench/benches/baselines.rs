//! Ablation A3: wall-clock comparison of all multi-set structures on the
//! same workload (page-count comparisons live in the `compare` binary).

use baselines::{CgConfig, CgTree, ChTree, HTree, SetIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workload::queries::{pick_near, pick_range};
use workload::uniform::{generate_postings, key_bytes, KeyCount, UIndexSet, UniformConfig};

fn bench_baselines(c: &mut Criterion) {
    let cfg = UniformConfig {
        num_objects: 30_000,
        num_sets: 8,
        keys: KeyCount::Distinct(1000),
        seed: 5,
    };
    let postings = generate_postings(&cfg);
    let mut structures: Vec<Box<dyn SetIndex>> = vec![
        Box::new(UIndexSet::build(8, &postings).unwrap()),
        Box::new(ChTree::build(1024, 1 << 16, &mut postings.clone()).unwrap()),
        Box::new(HTree::build(1024, 1 << 16, &mut postings.clone()).unwrap()),
        Box::new(CgTree::build(CgConfig::default(), &mut postings.clone()).unwrap()),
    ];

    let mut group = c.benchmark_group("baselines");
    for s in structures.iter_mut() {
        let name = s.name();
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(BenchmarkId::new("exact_4sets", name), |b| {
            b.iter(|| {
                let key = key_bytes(rng.gen_range(0..1000));
                let sets = pick_near(&mut rng, 8, 4);
                s.exact(&key, &sets).unwrap().0.len()
            })
        });
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_function(BenchmarkId::new("range2pct_2sets", name), |b| {
            b.iter(|| {
                let (lo, hi) = pick_range(&mut rng, 1000, 0.02);
                let sets = pick_near(&mut rng, 8, 2);
                s.range(&lo, &hi, &sets).unwrap().0.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
